package omb

import (
	"testing"
	"time"

	"github.com/pravega-go/pravega/internal/baselines/kafka"
	"github.com/pravega-go/pravega/internal/baselines/pulsar"
	"github.com/pravega-go/pravega/internal/hosting"
	"github.com/pravega-go/pravega/pkg/pravega"
)

func newPravegaSystem(t *testing.T) *PravegaSystem {
	t.Helper()
	sys, err := pravega.NewInProcess(pravega.SystemConfig{
		Cluster: hosting.ClusterConfig{Stores: 1, ContainersPerStore: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateScope("omb"); err != nil {
		t.Fatal(err)
	}
	ps := &PravegaSystem{Sys: sys, Scope: "omb"}
	t.Cleanup(ps.Close)
	return ps
}

func TestRunAgainstPravega(t *testing.T) {
	sys := newPravegaSystem(t)
	if err := sys.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, WorkloadConfig{
		Topic:          "t",
		Partitions:     2,
		Producers:      2,
		RatePerSec:     500,
		EventSize:      100,
		Duration:       500 * time.Millisecond,
		WarmUp:         100 * time.Millisecond,
		KeyCardinality: 16,
		Consumers:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsSent == 0 {
		t.Fatal("no events sent")
	}
	if res.EventsRecv == 0 {
		t.Fatal("no events consumed")
	}
	if res.WriteLatency.Count == 0 || res.E2ELatency.Count == 0 {
		t.Fatal("latency histograms empty")
	}
	if res.EventsPerSec < 100 || res.EventsPerSec > 2000 {
		t.Fatalf("rate control off: %.0f e/s for a 500 e/s target", res.EventsPerSec)
	}
	if res.Failed {
		t.Fatal("run marked failed")
	}
}

func TestRunClosedLoopMaxRate(t *testing.T) {
	sys := newPravegaSystem(t)
	if err := sys.CreateTopic("max", 2); err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, WorkloadConfig{
		Topic:          "max",
		Partitions:     2,
		Producers:      1,
		RatePerSec:     0, // closed loop
		EventSize:      100,
		Duration:       300 * time.Millisecond,
		WarmUp:         50 * time.Millisecond,
		KeyCardinality: 8,
		MaxOutstanding: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsPerSec < 1000 {
		t.Fatalf("closed loop too slow: %.0f e/s", res.EventsPerSec)
	}
}

func TestRunAgainstKafkaBaseline(t *testing.T) {
	cl := kafka.NewCluster(kafka.ClusterConfig{})
	sys := &KafkaSystem{Cluster: cl, Producer: kafka.ProducerConfig{Linger: time.Millisecond}}
	defer sys.Close()
	if err := sys.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, WorkloadConfig{
		Topic: "t", Partitions: 2, Producers: 1,
		RatePerSec: 1000, EventSize: 100,
		Duration: 300 * time.Millisecond, WarmUp: 50 * time.Millisecond,
		KeyCardinality: 16, Consumers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsSent == 0 || res.EventsRecv == 0 {
		t.Fatalf("kafka baseline run empty: %+v", res)
	}
}

func TestRunAgainstPulsarBaseline(t *testing.T) {
	cl, err := pulsar.NewCluster(pulsar.ClusterConfig{DispatcherTick: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sys := &PulsarSystem{Cluster: cl, Producer: pulsar.ProducerConfig{Batching: true, BatchDelay: time.Millisecond}}
	defer sys.Close()
	if err := sys.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, WorkloadConfig{
		Topic: "t", Partitions: 2, Producers: 1,
		RatePerSec: 1000, EventSize: 100,
		Duration: 300 * time.Millisecond, WarmUp: 50 * time.Millisecond,
		KeyCardinality: 16, Consumers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsSent == 0 || res.EventsRecv == 0 {
		t.Fatalf("pulsar baseline run empty: %+v", res)
	}
}

func TestPayloadTimestampRoundTrip(t *testing.T) {
	ts := time.Now().Round(0)
	buf := encodePayload(100, ts)
	if len(buf) != 100 {
		t.Fatalf("payload %d bytes", len(buf))
	}
	m := decodePayload(buf)
	if m.Size != 100 || !m.Produced.Equal(ts) {
		t.Fatalf("decode = %+v", m)
	}
	// Tiny payloads are padded to hold the timestamp.
	if len(encodePayload(2, ts)) != 8 {
		t.Fatal("tiny payload not padded")
	}
}

func TestNoKeysWorkload(t *testing.T) {
	sys := newPravegaSystem(t)
	if err := sys.CreateTopic("nk", 2); err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, WorkloadConfig{
		Topic: "nk", Partitions: 2, Producers: 1,
		RatePerSec: 300, EventSize: 100,
		Duration: 300 * time.Millisecond, WarmUp: 50 * time.Millisecond,
		KeyCardinality: 0, // no routing keys
	})
	if err != nil || res.EventsSent == 0 {
		t.Fatalf("no-keys run: %+v, %v", res, err)
	}
}
