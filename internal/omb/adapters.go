package omb

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/pravega-go/pravega/internal/baselines/kafka"
	"github.com/pravega-go/pravega/internal/baselines/pulsar"
	"github.com/pravega-go/pravega/pkg/pravega"
)

// ---------------------------------------------------------------- Pravega

// PravegaSystem adapts a pravega.System to the driver.
type PravegaSystem struct {
	Sys   *pravega.System
	Scope string
	Label string
	// Writer tuning passed through to each producer.
	WriterConfig pravega.WriterConfig
}

var _ System = (*PravegaSystem)(nil)

// Name implements System.
func (p *PravegaSystem) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "Pravega"
}

// CreateTopic implements System: a stream with fixed parallelism.
func (p *PravegaSystem) CreateTopic(topic string, partitions int) error {
	return p.Sys.CreateStream(pravega.StreamConfig{
		Scope:           p.Scope,
		Name:            topic,
		InitialSegments: partitions,
	})
}

// NewProducer implements System.
func (p *PravegaSystem) NewProducer(topic string) (Producer, error) {
	cfg := p.WriterConfig
	cfg.Scope = p.Scope
	cfg.Stream = topic
	w, err := p.Sys.NewWriter(cfg)
	if err != nil {
		return nil, err
	}
	return &pravegaProducer{w: w}, nil
}

type pravegaProducer struct {
	w  *pravega.EventWriter
	rr atomic.Int64
}

type pravegaAck struct{ f *pravega.WriteFuture }

func (a pravegaAck) Done() <-chan struct{} { return a.f.Done() }
func (a pravegaAck) Err() error            { return a.f.Err() }

func (pp *pravegaProducer) Send(key string, size int, produced time.Time) Ack {
	if key == "" {
		// "No routing keys": spread events without ordering guarantees.
		key = fmt.Sprintf("rr-%d", pp.rr.Add(1))
	}
	return pravegaAck{f: pp.w.WriteEvent(key, encodePayload(size, produced))}
}

func (pp *pravegaProducer) Flush() error { return pp.w.Flush() }
func (pp *pravegaProducer) Close() error { return pp.w.Close() }

// Close implements System.
func (p *PravegaSystem) Close() { p.Sys.Close() }

// NewConsumers implements System: one reader group shared by n readers.
func (p *PravegaSystem) NewConsumers(topic string, n int) ([]Consumer, error) {
	rg, err := p.Sys.NewReaderGroup(fmt.Sprintf("omb-%s-%d", topic, time.Now().UnixNano()), p.Scope, topic)
	if err != nil {
		return nil, err
	}
	out := make([]Consumer, n)
	for i := range out {
		r, err := rg.NewReader(fmt.Sprintf("reader-%d", i))
		if err != nil {
			return nil, err
		}
		out[i] = &pravegaConsumer{r: r}
	}
	return out, nil
}

type pravegaConsumer struct{ r *pravega.Reader }

func (pc *pravegaConsumer) Poll(maxWait time.Duration) ([]Message, error) {
	ev, err := pc.r.ReadNextEvent(maxWait)
	if err != nil {
		if err == pravega.ErrNoEvent {
			return nil, nil
		}
		return nil, err
	}
	out := []Message{decodePayload(ev.Data)}
	// Drain whatever is already buffered without further waiting.
	for len(out) < 512 {
		ev, err := pc.r.ReadNextEvent(0)
		if err != nil {
			break
		}
		out = append(out, decodePayload(ev.Data))
	}
	return out, nil
}

func (pc *pravegaConsumer) Close() error { return pc.r.Close() }

// encodePayload embeds the produce timestamp for e2e latency measurement.
func encodePayload(size int, produced time.Time) []byte {
	if size < 8 {
		size = 8
	}
	buf := make([]byte, size)
	binary.BigEndian.PutUint64(buf, uint64(produced.UnixNano()))
	return buf
}

func decodePayload(data []byte) Message {
	m := Message{Size: len(data)}
	if len(data) >= 8 {
		m.Produced = time.Unix(0, int64(binary.BigEndian.Uint64(data)))
	}
	return m
}

// ------------------------------------------------------------------ Kafka

// KafkaSystem adapts the Kafka-like baseline.
type KafkaSystem struct {
	Cluster  *kafka.Cluster
	Label    string
	Producer kafka.ProducerConfig
}

var _ System = (*KafkaSystem)(nil)

// Name implements System.
func (k *KafkaSystem) Name() string {
	if k.Label != "" {
		return k.Label
	}
	return "Kafka"
}

// CreateTopic implements System.
func (k *KafkaSystem) CreateTopic(topic string, partitions int) error {
	return k.Cluster.CreateTopic(topic, partitions)
}

// NewProducer implements System.
func (k *KafkaSystem) NewProducer(topic string) (Producer, error) {
	cfg := k.Producer
	cfg.Topic = topic
	p, err := k.Cluster.NewProducer(cfg)
	if err != nil {
		return nil, err
	}
	return &kafkaProducer{p: p}, nil
}

type kafkaProducer struct{ p *kafka.Producer }

func (kp *kafkaProducer) Send(key string, size int, _ time.Time) Ack {
	return kp.p.Send(key, size)
}
func (kp *kafkaProducer) Flush() error { kp.p.Flush(); return nil }
func (kp *kafkaProducer) Close() error { kp.p.Close(); return nil }

// NewConsumers implements System: partitions split across n consumers.
func (k *KafkaSystem) NewConsumers(topic string, n int) ([]Consumer, error) {
	total, err := k.Cluster.Partitions(topic)
	if err != nil {
		return nil, err
	}
	out := make([]Consumer, 0, n)
	for i := 0; i < n; i++ {
		var parts []int
		for p := i; p < total; p += n {
			parts = append(parts, p)
		}
		if len(parts) == 0 {
			parts = []int{i % total}
		}
		c, err := k.Cluster.NewConsumer(topic, parts, k.Producer.Profile)
		if err != nil {
			return nil, err
		}
		out = append(out, kafkaConsumer{c: c})
	}
	return out, nil
}

type kafkaConsumer struct{ c *kafka.Consumer }

func (kc kafkaConsumer) Poll(maxWait time.Duration) ([]Message, error) {
	msgs, err := kc.c.Poll(1<<20, maxWait)
	if err != nil {
		return nil, err
	}
	out := make([]Message, len(msgs))
	for i, m := range msgs {
		out[i] = Message{Size: m.Size, Produced: m.Produced}
	}
	return out, nil
}

func (kc kafkaConsumer) Close() error { return nil }

// Close implements System.
func (k *KafkaSystem) Close() { k.Cluster.Close() }

// ----------------------------------------------------------------- Pulsar

// PulsarSystem adapts the Pulsar-like baseline.
type PulsarSystem struct {
	Cluster  *pulsar.Cluster
	Label    string
	Producer pulsar.ProducerConfig
}

var _ System = (*PulsarSystem)(nil)

// Name implements System.
func (p *PulsarSystem) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "Pulsar"
}

// CreateTopic implements System.
func (p *PulsarSystem) CreateTopic(topic string, partitions int) error {
	return p.Cluster.CreateTopic(topic, partitions)
}

// NewProducer implements System.
func (p *PulsarSystem) NewProducer(topic string) (Producer, error) {
	cfg := p.Producer
	cfg.Topic = topic
	pr, err := p.Cluster.NewProducer(cfg)
	if err != nil {
		return nil, err
	}
	return &pulsarProducer{p: pr}, nil
}

type pulsarProducer struct{ p *pulsar.Producer }

func (pp *pulsarProducer) Send(key string, size int, _ time.Time) Ack {
	return pp.p.Send(key, size)
}
func (pp *pulsarProducer) Flush() error { pp.p.Flush(); return nil }
func (pp *pulsarProducer) Close() error { pp.p.Close(); return nil }

// NewConsumers implements System.
func (p *PulsarSystem) NewConsumers(topic string, n int) ([]Consumer, error) {
	total, err := p.Cluster.Partitions(topic)
	if err != nil {
		return nil, err
	}
	out := make([]Consumer, 0, n)
	for i := 0; i < n; i++ {
		var parts []int
		for pi := i; pi < total; pi += n {
			parts = append(parts, pi)
		}
		if len(parts) == 0 {
			parts = []int{i % total}
		}
		c, err := p.Cluster.NewConsumer(topic, parts, p.Producer.Profile)
		if err != nil {
			return nil, err
		}
		out = append(out, pulsarConsumer{c: c})
	}
	return out, nil
}

type pulsarConsumer struct{ c *pulsar.Consumer }

func (pc pulsarConsumer) Poll(maxWait time.Duration) ([]Message, error) {
	msgs, err := pc.c.Poll(1<<20, maxWait)
	if err != nil {
		return nil, err
	}
	out := make([]Message, len(msgs))
	for i, m := range msgs {
		out[i] = Message{Size: m.Size, Produced: m.Produced}
	}
	return out, nil
}

func (pc pulsarConsumer) Close() error { return nil }

// Close implements System.
func (p *PulsarSystem) Close() { p.Cluster.Close() }
