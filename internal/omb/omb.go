// Package omb is an OpenMessaging-Benchmark-style workload driver (§5.1):
// open-loop rate-controlled producers, latency capture without coordinated
// omission (latency is measured from the *intended* send time), end-to-end
// latency via embedded produce timestamps, a max-rate closed-loop mode
// (Fig. 11) and a backlog-drain mode for historical reads (Fig. 12). One
// driver runs against Pravega and both baselines through small adapter
// interfaces.
package omb

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/pravega-go/pravega/internal/metrics"
)

// Ack resolves when a produced event is acknowledged.
type Ack interface {
	Done() <-chan struct{}
	Err() error
}

// Producer is one producer/writer client.
type Producer interface {
	// Send asynchronously produces an event of the given size routed by
	// key ("" = no routing key). produced is embedded so consumers can
	// compute end-to-end latency.
	Send(key string, size int, produced time.Time) Ack
	// Flush waits for outstanding sends.
	Flush() error
	Close() error
}

// Message is one consumed event.
type Message struct {
	Size     int
	Produced time.Time
}

// Consumer is one consumer/reader client.
type Consumer interface {
	// Poll returns available messages, waiting up to maxWait when idle.
	Poll(maxWait time.Duration) ([]Message, error)
	Close() error
}

// System is a benchmarkable deployment.
type System interface {
	Name() string
	CreateTopic(topic string, partitions int) error
	NewProducer(topic string) (Producer, error)
	// NewConsumers returns n consumers that partition the topic's
	// consumption among themselves.
	NewConsumers(topic string, n int) ([]Consumer, error)
	Close()
}

// WorkloadConfig describes one benchmark run.
type WorkloadConfig struct {
	Topic      string
	Partitions int
	// Producers is the producer (writer) count.
	Producers int
	// RatePerSec is the total target event rate; 0 = closed-loop max rate.
	RatePerSec float64
	// EventSize in bytes.
	EventSize int
	// Duration of the measured interval.
	Duration time.Duration
	// WarmUp before measurement starts.
	WarmUp time.Duration
	// KeyCardinality is the number of distinct routing keys (0 = no keys,
	// the paper's "no routing keys" variants).
	KeyCardinality int
	// Consumers (0 = write-only workload).
	Consumers int
	// MaxOutstanding bounds in-flight events per producer in closed-loop
	// mode (default 512).
	MaxOutstanding int
}

// Result is one run's measurements.
type Result struct {
	System     string
	EventsSent int64
	EventsRecv int64
	Errors     int64
	Elapsed    time.Duration
	// Write throughput (acknowledged).
	EventsPerSec float64
	MBPerSec     float64
	// WriteLatency is the producer ack latency distribution (µs).
	WriteLatency metrics.Snapshot
	// E2ELatency is produce→consume latency (µs), when consuming.
	E2ELatency metrics.Snapshot
	// ReadMBPerSec is consumer throughput.
	ReadMBPerSec float64
	// Failed marks runs where the system crashed or errored heavily
	// (Pulsar in Fig. 10b).
	Failed bool
}

// Run executes the workload against the system. The topic must already
// exist (callers often pre-create it to configure policies).
func Run(sys System, cfg WorkloadConfig) (Result, error) {
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 512
	}
	producers := make([]Producer, cfg.Producers)
	for i := range producers {
		p, err := sys.NewProducer(cfg.Topic)
		if err != nil {
			return Result{}, err
		}
		producers[i] = p
	}
	var consumers []Consumer
	if cfg.Consumers > 0 {
		cs, err := sys.NewConsumers(cfg.Topic, cfg.Consumers)
		if err != nil {
			return Result{}, err
		}
		consumers = cs
	}

	res := Result{System: sys.Name()}
	writeLat := metrics.NewHistogram()
	e2eLat := metrics.NewHistogram()
	var sent, recvd, errs, recvBytes atomic.Int64
	var measuring atomic.Bool

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Consumers.
	for _, c := range consumers {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				msgs, err := c.Poll(20 * time.Millisecond)
				if err != nil {
					errs.Add(1)
					continue
				}
				now := time.Now()
				for _, m := range msgs {
					if measuring.Load() {
						recvd.Add(1)
						recvBytes.Add(int64(m.Size))
						e2eLat.Record(now.Sub(m.Produced).Microseconds())
					}
				}
			}
		}()
	}

	// Producers.
	keys := makeKeys(cfg.KeyCardinality)
	perProducerRate := 0.0
	if cfg.RatePerSec > 0 {
		perProducerRate = cfg.RatePerSec / float64(cfg.Producers)
	}
	for pi, p := range producers {
		p, pi := p, pi
		wg.Add(1)
		go func() {
			defer wg.Done()
			runProducer(p, pi, cfg, keys, perProducerRate, stop, &measuring, writeLat, &sent, &errs, cfg.MaxOutstanding)
		}()
	}

	time.Sleep(cfg.WarmUp)
	measuring.Store(true)
	start := time.Now()
	time.Sleep(cfg.Duration)
	measuring.Store(false)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	for _, p := range producers {
		_ = p.Close()
	}
	for _, c := range consumers {
		_ = c.Close()
	}

	res.EventsSent = sent.Load()
	res.EventsRecv = recvd.Load()
	res.Errors = errs.Load()
	res.Elapsed = elapsed
	sec := elapsed.Seconds()
	res.EventsPerSec = float64(res.EventsSent) / sec
	res.MBPerSec = float64(res.EventsSent) * float64(cfg.EventSize) / sec / 1e6
	res.ReadMBPerSec = float64(recvBytes.Load()) / sec / 1e6
	res.WriteLatency = writeLat.Snapshot()
	res.E2ELatency = e2eLat.Snapshot()
	// A run is failed when a large share of sends errored (broker crash).
	if res.EventsSent+res.Errors > 0 && float64(res.Errors)/float64(res.EventsSent+res.Errors) > 0.05 {
		res.Failed = true
	}
	return res, nil
}

// runProducer is one producer thread: open-loop at a fixed rate, or
// closed-loop at max speed with a bounded outstanding window.
func runProducer(p Producer, idx int, cfg WorkloadConfig, keys []string, rate float64,
	stop <-chan struct{}, measuring *atomic.Bool, lat *metrics.Histogram,
	sent, errs *atomic.Int64, maxOutstanding int) {

	sem := make(chan struct{}, maxOutstanding)
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}
	next := time.Now()
	keyIdx := idx
	for {
		select {
		case <-stop:
			return
		default:
		}
		if interval > 0 {
			now := time.Now()
			if wait := next.Sub(now); wait > 0 {
				select {
				case <-time.After(wait):
				case <-stop:
					return
				}
			}
			// Open loop: intended send time advances regardless of how
			// long the send takes (no coordinated omission).
			next = next.Add(interval)
		}
		key := ""
		if len(keys) > 0 {
			key = keys[keyIdx%len(keys)]
			keyIdx++
		}
		intended := next.Add(-interval)
		if interval == 0 {
			intended = time.Now()
		}
		select {
		case sem <- struct{}{}:
		case <-stop:
			return
		}
		ack := p.Send(key, cfg.EventSize, time.Now())
		m := measuring.Load()
		go func(intended time.Time) {
			<-ack.Done()
			<-sem
			if ack.Err() != nil {
				errs.Add(1)
				return
			}
			if m {
				sent.Add(1)
				lat.Record(time.Since(intended).Microseconds())
			}
		}(intended)
	}
}

func makeKeys(n int) []string {
	if n <= 0 {
		return nil
	}
	keys := make([]string, n)
	for i := range keys {
		keys[i] = "key-" + itoa(i)
	}
	return keys
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
