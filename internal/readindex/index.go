package readindex

import (
	"errors"
	"fmt"
	"sync"

	"github.com/pravega-go/pravega/internal/blockcache"
)

// Errors returned by the index.
var (
	ErrTruncated = errors.New("readindex: offset is before the segment's truncation point")
	ErrGap       = errors.New("readindex: offset not covered by any entry")
)

// Location says where an entry's bytes live.
type Location int

// Entry locations.
const (
	// InCache means the bytes are in the block cache at CacheAddr.
	InCache Location = iota
	// InLTS means the bytes must be fetched from long-term storage.
	InLTS
)

// Entry describes one contiguous range of segment bytes.
type Entry struct {
	// Offset is the range's start offset within the segment.
	Offset int64
	// Length of the range.
	Length int64
	// Where the bytes are.
	Where Location
	// CacheAddr locates the bytes when Where == InCache.
	CacheAddr blockcache.Address
	// Generation is bumped on every access; the eviction scan removes the
	// stalest cached entries first (the "usage patterns" metadata of §4.2).
	Generation int64
}

// End returns the offset one past the entry's last byte.
func (e *Entry) End() int64 { return e.Offset + e.Length }

// Index is the per-segment read index. It is safe for concurrent use.
type Index struct {
	mu         sync.Mutex
	t          tree
	truncated  int64 // offsets below this are gone
	length     int64 // total segment length indexed (high-water mark)
	generation int64
}

// New creates an empty index.
func New() *Index { return &Index{} }

// Add registers a new entry. Adjacent cached tail entries are not merged
// automatically; the segment container appends into the tail entry via
// UpdateTail instead.
func (x *Index) Add(e Entry) {
	x.mu.Lock()
	defer x.mu.Unlock()
	ent := e
	x.t.put(e.Offset, &ent)
	if end := e.End(); end > x.length {
		x.length = end
	}
}

// TailEntry returns a copy of the entry with the highest offset, or false.
func (x *Index) TailEntry() (Entry, bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	e := x.t.max()
	if e == nil {
		return Entry{}, false
	}
	return *e, true
}

// ExtendTail grows the last entry by n bytes and updates its cache address
// (appends write into the entry's last block, possibly chaining a new one).
// It returns false when the index is empty or the tail is not cached.
func (x *Index) ExtendTail(n int64, newAddr blockcache.Address) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	e := x.t.max()
	if e == nil || e.Where != InCache {
		return false
	}
	e.Length += n
	e.CacheAddr = newAddr
	if end := e.End(); end > x.length {
		x.length = end
	}
	return true
}

// Find returns the entry containing offset, with its generation bumped.
func (x *Index) Find(offset int64) (Entry, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if offset < x.truncated {
		return Entry{}, fmt.Errorf("%w: offset %d < truncation %d", ErrTruncated, offset, x.truncated)
	}
	e := x.t.floor(offset)
	if e == nil || offset >= e.End() {
		return Entry{}, fmt.Errorf("%w: offset %d", ErrGap, offset)
	}
	x.generation++
	e.Generation = x.generation
	return *e, nil
}

// Replace swaps the entry at offset for a new descriptor (e.g. after
// fetching LTS bytes into the cache, or after evicting a cached entry to
// LTS-backed state). The offset must match an existing entry.
func (x *Index) Replace(e Entry) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	old := x.t.get(e.Offset)
	if old == nil {
		return false
	}
	ent := e
	ent.Generation = old.Generation
	x.t.put(e.Offset, &ent)
	return true
}

// TruncateBefore drops all entries that end at or before offset and records
// the truncation point. It returns the cache addresses of dropped cached
// entries so the caller can free them.
func (x *Index) TruncateBefore(offset int64) []blockcache.Address {
	x.mu.Lock()
	defer x.mu.Unlock()
	if offset > x.truncated {
		x.truncated = offset
	}
	var drop []int64
	var freed []blockcache.Address
	x.t.ascend(0, offset, func(e *Entry) bool {
		if e.End() <= offset {
			drop = append(drop, e.Offset)
			if e.Where == InCache {
				freed = append(freed, e.CacheAddr)
			}
		}
		return true
	})
	for _, k := range drop {
		x.t.delete(k)
	}
	return freed
}

// Truncation returns the current truncation offset.
func (x *Index) Truncation() int64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.truncated
}

// Length returns the highest indexed offset (the segment length as visible
// to readers).
func (x *Index) Length() int64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.length
}

// EvictionCandidates returns up to max cached entries in ascending
// generation order (stalest first), excluding the tail entry, which appends
// still target.
func (x *Index) EvictionCandidates(max int) []Entry {
	x.mu.Lock()
	defer x.mu.Unlock()
	tail := x.t.max()
	var out []Entry
	x.t.ascend(x.truncated, int64(1)<<62, func(e *Entry) bool {
		if e.Where == InCache && e != tail {
			out = append(out, *e)
		}
		return true
	})
	// Selection sort of the stalest `max`: entry counts are small per scan.
	for i := 0; i < len(out) && i < max; i++ {
		minIdx := i
		for j := i + 1; j < len(out); j++ {
			if out[j].Generation < out[minIdx].Generation {
				minIdx = j
			}
		}
		out[i], out[minIdx] = out[minIdx], out[i]
	}
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// Entries returns a copy of all entries in offset order (tests/debug).
func (x *Index) Entries() []Entry {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]Entry, 0, x.t.size)
	x.t.ascend(-1<<62, 1<<62, func(e *Entry) bool {
		out = append(out, *e)
		return true
	})
	return out
}

// Validate checks tree invariants plus entry contiguity (no overlaps).
// Used by property tests.
func (x *Index) Validate() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if !x.t.validate() {
		return errors.New("readindex: AVL invariant violated")
	}
	var prev *Entry
	var err error
	x.t.ascend(-1<<62, 1<<62, func(e *Entry) bool {
		if prev != nil && e.Offset < prev.End() {
			err = fmt.Errorf("readindex: entries overlap: %v then %v", *prev, *e)
			return false
		}
		p := *e
		prev = &p
		return true
	})
	return err
}
