package readindex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/pravega-go/pravega/internal/blockcache"
)

func TestAVLInsertLookup(t *testing.T) {
	var tr tree
	for i := 0; i < 1000; i++ {
		tr.put(int64(i*7%1000), &Entry{Offset: int64(i * 7 % 1000)})
	}
	if tr.size != 1000 {
		t.Fatalf("size %d", tr.size)
	}
	if !tr.validate() {
		t.Fatal("AVL invariant broken after inserts")
	}
	for i := 0; i < 1000; i++ {
		if e := tr.get(int64(i)); e == nil || e.Offset != int64(i) {
			t.Fatalf("get(%d) = %v", i, e)
		}
	}
	if tr.get(5000) != nil {
		t.Fatal("get of missing key")
	}
}

func TestAVLDelete(t *testing.T) {
	var tr tree
	for i := 0; i < 500; i++ {
		tr.put(int64(i), &Entry{Offset: int64(i)})
	}
	for i := 0; i < 500; i += 2 {
		if !tr.delete(int64(i)) {
			t.Fatalf("delete(%d) failed", i)
		}
	}
	if tr.delete(0) {
		t.Fatal("double delete succeeded")
	}
	if tr.size != 250 {
		t.Fatalf("size %d after deletes", tr.size)
	}
	if !tr.validate() {
		t.Fatal("AVL invariant broken after deletes")
	}
	for i := 0; i < 500; i++ {
		got := tr.get(int64(i))
		if (i%2 == 0) != (got == nil) {
			t.Fatalf("get(%d) = %v", i, got)
		}
	}
}

func TestAVLFloorCeiling(t *testing.T) {
	var tr tree
	for _, k := range []int64{10, 20, 30, 40} {
		tr.put(k, &Entry{Offset: k})
	}
	cases := []struct {
		q           int64
		floor, ceil int64 // -1 = nil
	}{
		{5, -1, 10}, {10, 10, 10}, {15, 10, 20}, {40, 40, 40}, {45, 40, -1},
	}
	for _, tc := range cases {
		f := tr.floor(tc.q)
		if (f == nil) != (tc.floor == -1) || (f != nil && f.Offset != tc.floor) {
			t.Fatalf("floor(%d) = %v, want %d", tc.q, f, tc.floor)
		}
		cl := tr.ceiling(tc.q)
		if (cl == nil) != (tc.ceil == -1) || (cl != nil && cl.Offset != tc.ceil) {
			t.Fatalf("ceiling(%d) = %v, want %d", tc.q, cl, tc.ceil)
		}
	}
	if tr.min().Offset != 10 || tr.max().Offset != 40 {
		t.Fatal("min/max wrong")
	}
}

func TestAVLAscendRange(t *testing.T) {
	var tr tree
	for i := int64(0); i < 20; i++ {
		tr.put(i*10, &Entry{Offset: i * 10})
	}
	var got []int64
	tr.ascend(35, 95, func(e *Entry) bool {
		got = append(got, e.Offset)
		return true
	})
	want := []int64{40, 50, 60, 70, 80, 90}
	if len(got) != len(want) {
		t.Fatalf("ascend = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ascend = %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	tr.ascend(0, 200, func(*Entry) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

// TestAVLRandomOpsProperty: the tree stays balanced and ordered under any
// mix of inserts and deletes.
func TestAVLRandomOpsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr tree
		model := map[int64]bool{}
		for op := 0; op < 300; op++ {
			k := int64(rng.Intn(100))
			if rng.Intn(2) == 0 {
				tr.put(k, &Entry{Offset: k})
				model[k] = true
			} else {
				deleted := tr.delete(k)
				if deleted != model[k] {
					return false
				}
				delete(model, k)
			}
			if !tr.validate() || tr.size != len(model) {
				return false
			}
		}
		for k := range model {
			if tr.get(k) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexFindAndExtend(t *testing.T) {
	x := New()
	x.Add(Entry{Offset: 0, Length: 100, Where: InCache, CacheAddr: 1})
	x.Add(Entry{Offset: 100, Length: 50, Where: InCache, CacheAddr: 2})

	e, err := x.Find(120)
	if err != nil || e.Offset != 100 {
		t.Fatalf("Find(120) = %+v, %v", e, err)
	}
	if _, err := x.Find(150); err == nil {
		t.Fatal("Find past end must fail")
	}
	if !x.ExtendTail(25, 3) {
		t.Fatal("ExtendTail failed")
	}
	e, err = x.Find(160)
	if err != nil || e.Offset != 100 || e.Length != 75 || e.CacheAddr != 3 {
		t.Fatalf("after ExtendTail: %+v, %v", e, err)
	}
	if x.Length() != 175 {
		t.Fatalf("Length = %d", x.Length())
	}
	tail, ok := x.TailEntry()
	if !ok || tail.Offset != 100 {
		t.Fatalf("TailEntry = %+v, %v", tail, ok)
	}
}

func TestIndexTruncate(t *testing.T) {
	x := New()
	for i := int64(0); i < 10; i++ {
		x.Add(Entry{Offset: i * 10, Length: 10, Where: InCache, CacheAddr: blockcache.Address(i + 1)})
	}
	freed := x.TruncateBefore(35)
	// Entries [0,10) [10,20) [20,30) end at or before 35? [30,40) spans it
	// and stays.
	if len(freed) != 3 {
		t.Fatalf("freed %d entries, want 3: %v", len(freed), freed)
	}
	if x.Truncation() != 35 {
		t.Fatalf("Truncation = %d", x.Truncation())
	}
	if _, err := x.Find(20); err == nil {
		t.Fatal("Find below truncation must fail")
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIndexReplaceAndEviction(t *testing.T) {
	x := New()
	for i := int64(0); i < 5; i++ {
		x.Add(Entry{Offset: i * 10, Length: 10, Where: InCache, CacheAddr: blockcache.Address(i + 1)})
	}
	// Touch entries 3 and 4 to freshen them.
	if _, err := x.Find(30); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Find(40); err != nil {
		t.Fatal(err)
	}
	cands := x.EvictionCandidates(2)
	if len(cands) != 2 {
		t.Fatalf("candidates = %d", len(cands))
	}
	// Stalest-first and never the tail entry (offset 40).
	for _, c := range cands {
		if c.Offset == 40 {
			t.Fatal("tail entry offered for eviction")
		}
		if c.Offset == 30 {
			t.Fatal("freshened entry evicted before stale ones")
		}
	}
	// Replace one with an LTS-backed descriptor.
	if !x.Replace(Entry{Offset: cands[0].Offset, Length: cands[0].Length, Where: InLTS}) {
		t.Fatal("Replace failed")
	}
	e, err := x.Find(cands[0].Offset)
	if err != nil || e.Where != InLTS {
		t.Fatalf("after Replace: %+v, %v", e, err)
	}
	if x.Replace(Entry{Offset: 999, Length: 1}) {
		t.Fatal("Replace of missing entry succeeded")
	}
}

func TestIndexValidateDetectsOverlap(t *testing.T) {
	x := New()
	x.Add(Entry{Offset: 0, Length: 20})
	x.Add(Entry{Offset: 10, Length: 20}) // overlaps
	if err := x.Validate(); err == nil {
		t.Fatal("overlap not detected")
	}
}

// TestIndexContiguousAppendProperty: modelling the segment container's use
// — contiguous appends plus occasional truncation — the index stays valid
// and Find returns the covering entry for every retained offset.
func TestIndexContiguousAppendProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := New()
		var length int64
		for op := 0; op < 100; op++ {
			n := int64(1 + rng.Intn(50))
			if tail, ok := x.TailEntry(); ok && rng.Intn(2) == 0 {
				_ = tail
				if !x.ExtendTail(n, blockcache.Address(op+1)) {
					return false
				}
			} else {
				x.Add(Entry{Offset: length, Length: n, Where: InCache, CacheAddr: blockcache.Address(op + 1)})
			}
			length += n
			if rng.Intn(10) == 0 && length > 0 {
				x.TruncateBefore(rng.Int63n(length))
			}
			if x.Validate() != nil {
				return false
			}
		}
		if x.Length() != length {
			return false
		}
		// Every offset from truncation to length resolves or is truncated.
		for off := x.Truncation(); off < length; off += 13 {
			if e, err := x.Find(off); err != nil {
				// Allowed only if the covering entry was fully below the
				// truncation point (dropped) — but then off < truncation,
				// contradiction.
				return false
			} else if off < e.Offset || off >= e.End() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
