// Package readindex implements the segment read index of §4.2: a sorted
// index of entries per segment keyed by start offset, backed by a custom
// AVL search tree to minimize memory while keeping O(log n) access. Each
// entry locates a contiguous range of segment bytes either in the block
// cache or in long-term storage, and carries the usage metadata that drives
// cache eviction.
package readindex

// avlNode is one tree node. Keys are segment offsets.
type avlNode struct {
	key         int64
	value       *Entry
	left, right *avlNode
	height      int
}

// tree is an AVL tree keyed by int64.
type tree struct {
	root *avlNode
	size int
}

func height(n *avlNode) int {
	if n == nil {
		return 0
	}
	return n.height
}

func fix(n *avlNode) {
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		n.height = hl + 1
	} else {
		n.height = hr + 1
	}
}

func balanceFactor(n *avlNode) int { return height(n.left) - height(n.right) }

func rotateRight(y *avlNode) *avlNode {
	x := y.left
	y.left = x.right
	x.right = y
	fix(y)
	fix(x)
	return x
}

func rotateLeft(x *avlNode) *avlNode {
	y := x.right
	x.right = y.left
	y.left = x
	fix(x)
	fix(y)
	return y
}

func rebalance(n *avlNode) *avlNode {
	fix(n)
	bf := balanceFactor(n)
	if bf > 1 {
		if balanceFactor(n.left) < 0 {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	}
	if bf < -1 {
		if balanceFactor(n.right) > 0 {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

func (t *tree) put(key int64, v *Entry) {
	var inserted bool
	t.root, inserted = put(t.root, key, v)
	if inserted {
		t.size++
	}
}

func put(n *avlNode, key int64, v *Entry) (*avlNode, bool) {
	if n == nil {
		return &avlNode{key: key, value: v, height: 1}, true
	}
	var inserted bool
	switch {
	case key < n.key:
		n.left, inserted = put(n.left, key, v)
	case key > n.key:
		n.right, inserted = put(n.right, key, v)
	default:
		n.value = v
		return n, false
	}
	return rebalance(n), inserted
}

func (t *tree) delete(key int64) bool {
	var deleted bool
	t.root, deleted = del(t.root, key)
	if deleted {
		t.size--
	}
	return deleted
}

func del(n *avlNode, key int64) (*avlNode, bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch {
	case key < n.key:
		n.left, deleted = del(n.left, key)
	case key > n.key:
		n.right, deleted = del(n.right, key)
	default:
		deleted = true
		if n.left == nil {
			return n.right, true
		}
		if n.right == nil {
			return n.left, true
		}
		// Replace with in-order successor.
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.key, n.value = succ.key, succ.value
		n.right, _ = del(n.right, succ.key)
	}
	return rebalance(n), deleted
}

// get returns the exact-key value.
func (t *tree) get(key int64) *Entry {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.value
		}
	}
	return nil
}

// floor returns the entry with the greatest key <= key.
func (t *tree) floor(key int64) *Entry {
	var best *avlNode
	n := t.root
	for n != nil {
		if n.key == key {
			return n.value
		}
		if n.key < key {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	if best == nil {
		return nil
	}
	return best.value
}

// ceiling returns the entry with the smallest key >= key.
func (t *tree) ceiling(key int64) *Entry {
	var best *avlNode
	n := t.root
	for n != nil {
		if n.key == key {
			return n.value
		}
		if n.key > key {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		return nil
	}
	return best.value
}

func (t *tree) min() *Entry {
	n := t.root
	if n == nil {
		return nil
	}
	for n.left != nil {
		n = n.left
	}
	return n.value
}

func (t *tree) max() *Entry {
	n := t.root
	if n == nil {
		return nil
	}
	for n.right != nil {
		n = n.right
	}
	return n.value
}

// ascend visits entries with key in [lo, hi) in order; fn returning false
// stops the walk.
func (t *tree) ascend(lo, hi int64, fn func(*Entry) bool) {
	ascend(t.root, lo, hi, fn)
}

func ascend(n *avlNode, lo, hi int64, fn func(*Entry) bool) bool {
	if n == nil {
		return true
	}
	if n.key > lo {
		if !ascend(n.left, lo, hi, fn) {
			return false
		}
	}
	if n.key >= lo && n.key < hi {
		if !fn(n.value) {
			return false
		}
	}
	if n.key < hi {
		return ascend(n.right, lo, hi, fn)
	}
	return true
}

// validate checks AVL invariants (test helper).
func (t *tree) validate() bool { return validate(t.root) }

func validate(n *avlNode) bool {
	if n == nil {
		return true
	}
	bf := balanceFactor(n)
	if bf < -1 || bf > 1 {
		return false
	}
	if n.left != nil && n.left.key >= n.key {
		return false
	}
	if n.right != nil && n.right.key <= n.key {
		return false
	}
	return validate(n.left) && validate(n.right)
}
