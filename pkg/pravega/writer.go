package pravega

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pravega-go/pravega/internal/client"
	"github.com/pravega-go/pravega/internal/controller"
	"github.com/pravega-go/pravega/internal/keyspace"
	"github.com/pravega-go/pravega/internal/segstore"
	"github.com/pravega-go/pravega/internal/wal"
)

// WriterConfig parameterizes an EventWriter.
type WriterConfig struct {
	// Scope and Stream name the target stream.
	Scope  string
	Stream string
	// MaxBatchSize bounds one append batch in bytes (default 1 MiB, §4.1).
	MaxBatchSize int
	// MaxInFlight bounds pipelined appends per segment (default 2: one
	// batch on the wire while the next fills — the paper's "batch data is
	// a mix of data in-flight and data collected at the server").
	MaxInFlight int
	// ID identifies the writer for exactly-once deduplication; generated
	// when empty.
	ID string
}

func (c *WriterConfig) defaults() {
	if c.MaxBatchSize <= 0 {
		c.MaxBatchSize = 1 << 20
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	if c.ID == "" {
		c.ID = randomID("writer-")
	}
}

// randomID returns prefix plus a 64-bit crypto/rand hex suffix. Writer ids
// seed server-side exactly-once dedup state, so two writers must never
// share one — a clock-derived suffix collides when writers are created
// concurrently (or on coarse clocks), random suffixes cannot.
func randomID(prefix string) string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("pravega: reading random id: %v", err))
	}
	return prefix + hex.EncodeToString(b[:])
}

// WriteFuture resolves when an event is durably acknowledged.
type WriteFuture struct {
	ch  chan struct{}
	err error
}

func newFuture() *WriteFuture { return &WriteFuture{ch: make(chan struct{})} }

func (f *WriteFuture) complete(err error) {
	f.err = err
	close(f.ch)
}

// Wait blocks for the acknowledgement.
func (f *WriteFuture) Wait() error {
	<-f.ch
	return f.err
}

// WaitCtx blocks for the acknowledgement or until ctx is done, whichever
// comes first. On cancellation it returns ctx.Err(); the write itself is
// not revoked — the future still resolves and may be waited on again.
func (f *WriteFuture) WaitCtx(ctx context.Context) error {
	select {
	case <-f.ch:
		return f.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Done returns a channel closed on acknowledgement.
func (f *WriteFuture) Done() <-chan struct{} { return f.ch }

// Err returns the result; only valid after Done.
func (f *WriteFuture) Err() error { return f.err }

// pendingEvent is one event retained until acknowledged (needed to re-route
// on segment seal, §3.2).
type pendingEvent struct {
	key    string
	hash   float64
	data   []byte
	future *WriteFuture
	seq    int64
}

// EventWriter appends events to a stream with per-routing-key order and
// exactly-once semantics. Batching is dynamic and self-clocking (§4.1):
// when a segment has no append in flight, events ship immediately (no
// batching latency at low rates); while appends are in flight, arriving
// events accumulate into the next batch, so batch size automatically grows
// to ingest-rate × round-trip-time at high rates — the paper's
// min(MaxBatchSize, rate × RTT/2) estimate emerges without tuning knobs.
type EventWriter struct {
	cfg  WriterConfig
	sys  *System
	conn client.DataTransport

	mu      sync.Mutex
	route   routeTable
	writers map[int64]*segmentWriter
	closed  bool

	eventSeq   atomic.Int64
	bytesAcked atomic.Int64

	statMu sync.Mutex
	rtt    time.Duration // EWMA of append round trips (diagnostics)
}

// NewWriter creates an event writer for a stream.
func (s *System) NewWriter(cfg WriterConfig) (*EventWriter, error) {
	cfg.defaults()
	segs, err := s.control.GetActiveSegments(cfg.Scope, cfg.Stream)
	if err != nil {
		return nil, convertErr(err)
	}
	w := &EventWriter{
		cfg:     cfg,
		sys:     s,
		conn:    s.newData(),
		route:   routeTable{segments: segs},
		writers: make(map[int64]*segmentWriter),
		rtt:     s.profileRTT(),
	}
	return w, nil
}

func (s *System) profileRTT() time.Duration {
	if s.profile == nil {
		return 500 * time.Microsecond
	}
	return s.profile.ClientLink.RTT()
}

// ID returns the writer id used for deduplication.
func (w *EventWriter) ID() string { return w.cfg.ID }

// WriteEvent routes an event by key and returns a future resolved when the
// event is durable. Events with the same routing key are appended — and
// will be read — in WriteEvent order (§3.2).
func (w *EventWriter) WriteEvent(routingKey string, event []byte) *WriteFuture {
	f := newFuture()
	pe := pendingEvent{
		key:    routingKey,
		hash:   keyspace.HashKey(routingKey),
		data:   event,
		future: f,
		seq:    w.eventSeq.Add(1),
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		f.complete(ErrWriterClosed)
		return f
	}
	w.enqueueLocked(pe)
	w.mu.Unlock()
	mClientEventsWritten.Inc()
	return f
}

// enqueueLocked routes one pending event to its segment writer. Caller
// holds w.mu.
func (w *EventWriter) enqueueLocked(pe pendingEvent) {
	seg, err := w.route.segmentFor(pe.hash)
	if err != nil {
		pe.future.complete(err)
		return
	}
	sw, ok := w.writers[seg.ID.Number]
	if !ok {
		sw = newSegmentWriter(w, seg)
		w.writers[seg.ID.Number] = sw
	}
	sw.add(pe)
}

// observeRTT folds one server round-trip sample into the EWMA.
func (w *EventWriter) observeRTT(d time.Duration) {
	const alpha = 0.2
	w.statMu.Lock()
	w.rtt = time.Duration(float64(w.rtt)*(1-alpha) + float64(d)*alpha)
	w.statMu.Unlock()
	mClientRTTUs.RecordDuration(d)
}

// RTT returns the writer's current server round-trip estimate.
func (w *EventWriter) RTT() time.Duration {
	w.statMu.Lock()
	defer w.statMu.Unlock()
	return w.rtt
}

// Flush waits until every previously written event is acknowledged. A
// segment seal during the flush re-routes events to successor segments, so
// the flush loops until a full pass over all segment writers finds nothing
// open, in flight, parked or awaiting re-route.
func (w *EventWriter) Flush() error { return w.FlushCtx(context.Background()) }

// FlushCtx is Flush with cancellation: it returns ctx.Err() as soon as ctx
// is done. Cancellation abandons only the wait — in-flight events stay in
// flight and their futures still resolve normally.
func (w *EventWriter) FlushCtx(ctx context.Context) error {
	// On cancellation, wake every flusher parked on a segment writer's
	// condition variable. Broadcasting under each writer's lock pairs with
	// the wait loop's ctx check below, so a wakeup cannot be lost between
	// the check and the Wait.
	stop := context.AfterFunc(ctx, func() {
		w.mu.Lock()
		sws := make([]*segmentWriter, 0, len(w.writers))
		for _, sw := range w.writers {
			sws = append(sws, sw)
		}
		w.mu.Unlock()
		for _, sw := range sws {
			sw.mu.Lock()
			sw.flushCond.Broadcast()
			sw.mu.Unlock()
		}
	})
	defer stop()
	for {
		w.mu.Lock()
		sws := make([]*segmentWriter, 0, len(w.writers))
		for _, sw := range w.writers {
			sws = append(sws, sw)
		}
		w.mu.Unlock()

		busy := false
		for _, sw := range sws {
			sw.mu.Lock()
			sw.trySendLocked()
			for sw.inflight > 0 && ctx.Err() == nil {
				sw.flushCond.Wait()
			}
			if len(sw.batch) > 0 || len(sw.held) > 0 || len(sw.redirect) > 0 ||
				len(sw.retry) > 0 || sw.recovering {
				busy = true
			}
			sw.mu.Unlock()
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if !busy {
			// Confirm no new segment writers appeared (seal resolution
			// re-routes events into fresh writers).
			w.mu.Lock()
			stable := len(w.writers) == len(sws)
			if stable {
				for _, sw := range sws {
					if w.writers[sw.seg.ID.Number] != sw {
						stable = false
						break
					}
				}
			}
			w.mu.Unlock()
			if stable {
				return nil
			}
		}
		if err := sleepCtx(ctx, time.Millisecond); err != nil {
			return err
		}
	}
}

// Close flushes and releases the writer.
func (w *EventWriter) Close() error {
	err := w.Flush()
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	return err
}

// BytesAcked reports durably acknowledged payload bytes (benchmarks).
func (w *EventWriter) BytesAcked() int64 { return w.bytesAcked.Load() }

// segmentWriter batches and pipelines appends to one segment.
type segmentWriter struct {
	w   *EventWriter
	seg controller.SegmentWithRange

	mu         sync.Mutex
	batch      []pendingEvent
	batchSize  int
	inflight   int
	sealed     bool
	held       []pendingEvent // events parked while a seal resolves
	redirect   []pendingEvent // failed in-flight events awaiting re-route
	retry      []batchRec     // batches lost to a disconnect, awaiting replay
	recovering bool           // a recover() goroutine is active
	flushCond  *sync.Cond
}

// batchRec is one sent batch retained for replay across a transport
// disconnect. Replay must resend the original batches verbatim — never
// merged or split — because the server deduplicates at batch granularity:
// its writer attribute records the last event number of the last applied
// batch (§3.2).
type batchRec struct {
	events  []pendingEvent
	payload int64
}

func (b batchRec) lastNum() int64 { return b.events[len(b.events)-1].seq }

func newSegmentWriter(w *EventWriter, seg controller.SegmentWithRange) *segmentWriter {
	sw := &segmentWriter{w: w, seg: seg}
	sw.flushCond = sync.NewCond(&sw.mu)
	return sw
}

// add appends an event to the open batch and ships it as soon as an
// in-flight slot is free — the self-clocking dynamic batching of §4.1.
func (sw *segmentWriter) add(pe pendingEvent) {
	sw.mu.Lock()
	if sw.sealed {
		// A seal is resolving; park the event to preserve per-key order
		// across the re-route (§3.2).
		sw.held = append(sw.held, pe)
		sw.mu.Unlock()
		return
	}
	sw.batch = append(sw.batch, pe)
	sw.batchSize += eventFrameSize(pe.data)
	sw.trySendLocked()
	sw.mu.Unlock()
}

// trySendLocked ships the open batch when a pipeline slot is available.
// Oversized batches ship on extra slots rather than stalling. Caller holds
// sw.mu.
func (sw *segmentWriter) trySendLocked() {
	// While a disconnect is being recovered, nothing new ships: replayed
	// batches must reach the server before younger events, or per-key order
	// breaks.
	if sw.sealed || sw.recovering || len(sw.retry) > 0 || len(sw.batch) == 0 {
		return
	}
	limit := sw.w.cfg.MaxInFlight
	if sw.batchSize >= sw.w.cfg.MaxBatchSize {
		limit *= 4 // burst relief at the batch-size bound
	}
	if sw.inflight >= limit {
		return
	}
	mClientBatchFillPct.Record(int64(sw.batchSize) * 100 / int64(sw.w.cfg.MaxBatchSize))
	events := sw.batch
	sw.batch = nil
	sw.batchSize = 0
	sw.inflight++
	sw.sendBatch(events)
}

// transientAppendErr reports append/handshake failures the writer resolves
// by parking the batch and replaying through the WriterState handshake:
// connection loss, or a container failover/rebalance in progress (routed to
// the wrong host, container shut down mid-append, zombie WAL fenced by the
// new owner). Replay is safe for all of them because the server-side
// (writer, eventNum) dedup discards anything that was in fact applied.
func transientAppendErr(err error) bool {
	return errors.Is(err, client.ErrDisconnected) ||
		errors.Is(err, client.ErrWrongHost) ||
		errors.Is(err, segstore.ErrWrongContainer) ||
		errors.Is(err, segstore.ErrContainerDown) ||
		errors.Is(err, wal.ErrFenced)
}

// sendBatch serializes and ships one batch (caller holds sw.mu).
func (sw *segmentWriter) sendBatch(events []pendingEvent) {
	buf := make([]byte, 0, 4096)
	var payload int64
	for _, pe := range events {
		buf = appendEventFrame(buf, pe.data)
		payload += int64(len(pe.data))
	}
	lastNum := events[len(events)-1].seq
	start := time.Now()
	sw.w.conn.AppendAsync(sw.seg.ID.QualifiedName(), buf, sw.w.cfg.ID, lastNum, int32(len(events)), func(r segstore.AppendResult) {
		sw.w.observeRTT(time.Since(start))
		sw.onBatchResult(events, payload, r)
	})
}

// onBatchResult handles one batch acknowledgement.
func (sw *segmentWriter) onBatchResult(events []pendingEvent, payload int64, r segstore.AppendResult) {
	switch {
	case r.Err == nil:
		sw.w.bytesAcked.Add(payload)
		for _, pe := range events {
			pe.future.complete(nil)
		}
		sw.mu.Lock()
		sw.inflight--
		sw.trySendLocked()
		// Acks resolve out of order: this success may be the last in-flight
		// ack AFTER an earlier batch already parked itself for replay.
		// Recovery only ever starts at inflight==0, so the last ack — no
		// matter its own outcome — must hand off to it, or the parked
		// batches (and their futures) hang forever.
		startRecover := sw.inflight == 0 && !sw.recovering && len(sw.retry) > 0
		if startRecover {
			sw.recovering = true
		}
		// A sealed rejection completes at validation time and can overtake
		// an earlier batch's success ack (which waits for the WAL write).
		// If this success is the last in-flight ack of a sealed segment,
		// seal resolution falls to us. Recovery takes precedence: recover()
		// re-checks sealed once the parked batches are resolved.
		resolved := !startRecover && sw.sealed && sw.inflight == 0 && !sw.recovering
		sw.flushCond.Broadcast()
		sw.mu.Unlock()
		if startRecover {
			go sw.recover()
		} else if resolved {
			sw.resolveSeal()
		}
	case errors.Is(r.Err, segstore.ErrSegmentSealed):
		sw.mu.Lock()
		sw.sealed = true
		sw.redirect = append(sw.redirect, events...)
		sw.inflight--
		startRecover := sw.inflight == 0 && !sw.recovering && len(sw.retry) > 0
		if startRecover {
			sw.recovering = true
		}
		resolved := !startRecover && sw.inflight == 0 && !sw.recovering
		sw.mu.Unlock()
		if startRecover {
			go sw.recover()
		} else if resolved {
			sw.resolveSeal()
		}
	case transientAppendErr(r.Err):
		// The transport lost its connection, or the container moved under a
		// failover/rebalance (wrong host, container down, fenced zombie
		// WAL), with this batch in flight: the server may or may not have
		// applied it. Park the batch for replay; once every in-flight batch
		// has resolved, recover() re-establishes the writer's position via
		// WriterState and replays (or acks) each parked batch in order —
		// server-side (writer, eventNum) dedup makes the replay exactly-once
		// whichever way the ambiguity resolved (§3.2 reconnection
		// handshake).
		sw.mu.Lock()
		sw.retry = append(sw.retry, batchRec{events: events, payload: payload})
		sw.inflight--
		start := sw.inflight == 0 && !sw.recovering
		if start {
			sw.recovering = true
		}
		sw.mu.Unlock()
		if start {
			go sw.recover()
		}
	default:
		err := convertErr(r.Err)
		for _, pe := range events {
			pe.future.complete(err)
		}
		sw.mu.Lock()
		sw.inflight--
		startRecover := sw.inflight == 0 && !sw.recovering && len(sw.retry) > 0
		if startRecover {
			sw.recovering = true
		}
		resolved := !startRecover && sw.sealed && sw.inflight == 0 && !sw.recovering
		sw.flushCond.Broadcast()
		sw.mu.Unlock()
		if startRecover {
			go sw.recover()
		} else if resolved {
			sw.resolveSeal()
		}
	}
}

// recover re-establishes the writer's position after a disconnect and
// replays the parked batches. It runs with sw.recovering set (blocking new
// sends) and no batch in flight. The server's writer attribute tells which
// parked batches were applied before the connection died: those are acked
// locally; the rest are resent verbatim, oldest first, and server-side
// deduplication discards any the ack merely got lost for (§3.2).
func (sw *segmentWriter) recover() {
	w := sw.w
	name := sw.seg.ID.QualifiedName()
	var attr int64
	// A disconnect retries indefinitely (the transport reconnects with
	// backoff underneath us); other transient failures — a container with
	// no owner mid-failover — are bounded so a writer against a cluster
	// that never recovers fails its futures instead of hanging.
	transientDeadline := time.Now().Add(30 * time.Second)
	for {
		a, err := w.conn.WriterState(name, w.cfg.ID)
		if err == nil {
			attr = a
			break
		}
		if !errors.Is(err, client.ErrDisconnected) &&
			!(transientAppendErr(err) && time.Now().Before(transientDeadline)) {
			sw.mu.Lock()
			recs := sw.retry
			sw.retry = nil
			sw.recovering = false
			sw.flushCond.Broadcast()
			sw.mu.Unlock()
			cerr := convertErr(err)
			for _, rec := range recs {
				for _, pe := range rec.events {
					pe.future.complete(cerr)
				}
			}
			return
		}
		// Still disconnected; the transport is reconnecting with backoff.
		time.Sleep(5 * time.Millisecond)
	}

	sw.mu.Lock()
	recs := sw.retry
	sw.retry = nil
	sw.mu.Unlock()
	// Completion callbacks can arrive out of order across a disconnect;
	// replay must be oldest-first.
	sort.Slice(recs, func(i, j int) bool { return recs[i].lastNum() < recs[j].lastNum() })
	for _, rec := range recs {
		if rec.lastNum() <= attr {
			// Applied before the connection died — only the ack was lost.
			w.bytesAcked.Add(rec.payload)
			for _, pe := range rec.events {
				pe.future.complete(nil)
			}
			continue
		}
		sw.mu.Lock()
		sw.inflight++
		sw.sendBatch(rec.events)
		sw.mu.Unlock()
	}

	sw.mu.Lock()
	sw.recovering = false
	// A replayed batch may have failed again (or the segment sealed)
	// while we were resending; route to the right follow-up.
	again := len(sw.retry) > 0 && sw.inflight == 0
	sealResolve := !again && sw.sealed && sw.inflight == 0
	if again {
		sw.recovering = true
	} else if !sealResolve {
		sw.trySendLocked()
	}
	sw.flushCond.Broadcast()
	sw.mu.Unlock()
	if again {
		go sw.recover()
	} else if sealResolve {
		sw.resolveSeal()
	}
}

// resolveSeal runs once all in-flight batches of a sealed segment have
// resolved: it fetches the successors (which, per the controller-writer
// protocol of Fig. 2b, were created before the segment was sealed),
// refreshes the route table, and re-routes the failed and parked events in
// their original order.
func (sw *segmentWriter) resolveSeal() {
	w := sw.w
	// Fetch the successors. Per the controller-writer protocol (Fig. 2b)
	// they are created before the segment is sealed but published to
	// metadata only after sealing completes, so poll across that window. A
	// sealed segment that never gains successors means the whole stream was
	// sealed: pending events can never be appended.
	for {
		succs, err := w.sys.control.GetSuccessors(w.cfg.Scope, w.cfg.Stream, sw.seg.ID.Number)
		if err != nil {
			sw.failPending(convertErr(err))
			return
		}
		if len(succs) > 0 {
			break
		}
		sealed, err := w.sys.control.IsStreamSealed(w.cfg.Scope, w.cfg.Stream)
		if err != nil {
			sw.failPending(convertErr(err))
			return
		}
		if sealed {
			sw.failPending(fmt.Errorf("%w: %s/%s", ErrStreamSealed, w.cfg.Scope, w.cfg.Stream))
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	segs, err := w.sys.control.GetActiveSegments(w.cfg.Scope, w.cfg.Stream)
	if err != nil {
		sw.failPending(convertErr(err))
		return
	}
	w.mu.Lock()
	w.route.segments = segs
	delete(w.writers, sw.seg.ID.Number)
	sw.mu.Lock()
	pending := append(sw.redirect, sw.batch...)
	pending = append(pending, sw.held...)
	sw.redirect, sw.batch, sw.held = nil, nil, nil
	sw.batchSize = 0
	sw.flushCond.Broadcast()
	sw.mu.Unlock()
	for _, pe := range pending {
		w.enqueueLocked(pe)
	}
	w.mu.Unlock()
}

func (sw *segmentWriter) failPending(err error) {
	sw.mu.Lock()
	pending := append(sw.redirect, sw.batch...)
	pending = append(pending, sw.held...)
	for _, rec := range sw.retry {
		pending = append(pending, rec.events...)
	}
	sw.redirect, sw.batch, sw.held, sw.retry = nil, nil, nil, nil
	sw.flushCond.Broadcast()
	sw.mu.Unlock()
	for _, pe := range pending {
		pe.future.complete(err)
	}
}
