package pravega

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// drainEvents reads until n events arrived or the deadline passes.
func drainEvents(t *testing.T, r *Reader, n int) []Event {
	t.Helper()
	var evs []Event
	for len(evs) < n {
		ev, err := r.ReadNextEvent(5 * time.Second)
		if err != nil {
			t.Fatalf("ReadNextEvent after %d/%d events: %v", len(evs), n, err)
		}
		evs = append(evs, ev)
	}
	return evs
}

// expectNoEvent asserts the stream tail is quiet.
func expectNoEvent(t *testing.T, r *Reader) {
	t.Helper()
	if ev, err := r.ReadNextEvent(300 * time.Millisecond); !errors.Is(err, ErrNoEvent) {
		t.Fatalf("expected quiet tail, got event %q, err %v", ev.Data, err)
	}
}

func TestTxnCommitVisibility(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "txns", "vis", 2)

	w, err := sys.NewWriter(WriterConfig{Scope: "txns", Stream: "vis"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	tw, err := sys.NewTransactionalWriter(TxnWriterConfig{Scope: "txns", Stream: "vis"})
	if err != nil {
		t.Fatal(err)
	}
	defer tw.Close()

	ctx := context.Background()
	txn, err := tw.BeginTxn(ctx)
	if err != nil {
		t.Fatalf("BeginTxn: %v", err)
	}
	if txn.ID() == "" {
		t.Fatal("empty transaction id")
	}

	// Interleave transactional and plain writes on the same keys.
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		txn.WriteEvent(key, []byte("txn-"+key))
		if err := w.WriteEvent(key, []byte("plain-"+key)).Wait(); err != nil {
			t.Fatalf("plain write: %v", err)
		}
	}

	rg, err := sys.NewReaderGroup("rg-vis", "txns", "vis")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Before commit only the plain events are visible.
	for _, ev := range drainEvents(t, r, 5) {
		if !strings.HasPrefix(string(ev.Data), "plain-") {
			t.Fatalf("uncommitted txn event leaked to reader: %q", ev.Data)
		}
	}
	expectNoEvent(t, r)

	if err := txn.Commit(ctx); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if st, err := txn.Status(ctx); err != nil || st != TxnCommitted {
		t.Fatalf("status after commit: %v, %v", st, err)
	}

	// After commit every transactional event is readable — all five at once.
	seen := map[string]bool{}
	for _, ev := range drainEvents(t, r, 5) {
		s := string(ev.Data)
		if !strings.HasPrefix(s, "txn-") {
			t.Fatalf("unexpected event after commit: %q", s)
		}
		if seen[s] {
			t.Fatalf("duplicate committed event %q", s)
		}
		seen[s] = true
	}
	expectNoEvent(t, r)
}

func TestTxnAbortLeavesNothing(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "txns", "abort", 2)
	tw, err := sys.NewTransactionalWriter(TxnWriterConfig{Scope: "txns", Stream: "abort"})
	if err != nil {
		t.Fatal(err)
	}
	defer tw.Close()

	ctx := context.Background()
	txn, err := tw.BeginTxn(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := txn.WriteEvent(fmt.Sprintf("k%d", i), []byte("doomed")).Wait(); err != nil {
			t.Fatalf("txn write: %v", err)
		}
	}
	if err := txn.Abort(ctx); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if st, err := txn.Status(ctx); err != nil || st != TxnAborted {
		t.Fatalf("status after abort: %v, %v", st, err)
	}
	// Terminal-state errors: writes and commits are refused.
	if err := txn.WriteEvent("k", []byte("late")).Wait(); !errors.Is(err, ErrTxnClosed) {
		t.Fatalf("write after abort: %v, want ErrTxnClosed", err)
	}
	if err := txn.Commit(ctx); !errors.Is(err, ErrTxnNotOpen) {
		t.Fatalf("commit after abort: %v, want ErrTxnNotOpen", err)
	}

	rg, err := sys.NewReaderGroup("rg-abort", "txns", "abort")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	expectNoEvent(t, r)
}

// TestTxnPerKeyOrderWithInterleavedWriter is the acceptance check that a
// transactional writer and a plain writer sharing routing keys each keep
// per-key order after the commit merges the transaction into the stream.
func TestTxnPerKeyOrderWithInterleavedWriter(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "txns", "order", 4)

	w, err := sys.NewWriter(WriterConfig{Scope: "txns", Stream: "order"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	tw, err := sys.NewTransactionalWriter(TxnWriterConfig{Scope: "txns", Stream: "order"})
	if err != nil {
		t.Fatal(err)
	}
	defer tw.Close()
	ctx := context.Background()
	txn, err := tw.BeginTxn(ctx)
	if err != nil {
		t.Fatal(err)
	}

	const keys, perKey = 5, 30
	for i := 0; i < perKey; i++ {
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("key-%d", k)
			txn.WriteEvent(key, []byte(fmt.Sprintf("t:%s:%d", key, i)))
			w.WriteEvent(key, []byte(fmt.Sprintf("p:%s:%d", key, i)))
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("plain flush: %v", err)
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	rg, err := sys.NewReaderGroup("rg-order", "txns", "order")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Per (writer, key) the observed sequence numbers must be strictly
	// increasing: the merge preserved each shadow segment's internal order
	// and never interleaved into the middle of the plain writer's runs.
	last := map[string]int{}
	for _, ev := range drainEvents(t, r, 2*keys*perKey) {
		parts := strings.SplitN(string(ev.Data), ":", 3)
		if len(parts) != 3 {
			t.Fatalf("malformed event %q", ev.Data)
		}
		seq, err := strconv.Atoi(parts[2])
		if err != nil {
			t.Fatalf("malformed seq in %q", ev.Data)
		}
		lane := parts[0] + ":" + parts[1]
		if prev, ok := last[lane]; ok && seq <= prev {
			t.Fatalf("per-key order violated on %s: %d after %d", lane, seq, prev)
		}
		last[lane] = seq
	}
}

func TestTxnCommitAfterScale(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "txns", "scaled", 1)
	tw, err := sys.NewTransactionalWriter(TxnWriterConfig{Scope: "txns", Stream: "scaled"})
	if err != nil {
		t.Fatal(err)
	}
	defer tw.Close()
	ctx := context.Background()
	txn, err := tw.BeginTxn(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		txn.WriteEvent(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("pre-scale-%d", i)))
	}

	// The parent is sealed by a manual scale while the transaction is open.
	if err := sys.Streams().Scale(ctx, "txns", "scaled", 0, 2); err != nil {
		t.Fatalf("Scale: %v", err)
	}
	if n, err := sys.Streams().SegmentCount(ctx, "txns", "scaled"); err != nil || n != 2 {
		t.Fatalf("segment count after scale: %d, %v", n, err)
	}

	// The transaction keeps writing into its (unsealed) shadow segments and
	// commits into the successors.
	for i := 0; i < 10; i++ {
		txn.WriteEvent(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("post-scale-%d", i)))
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatalf("Commit after scale: %v", err)
	}

	rg, err := sys.NewReaderGroup("rg-scaled", "txns", "scaled")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	seen := map[string]bool{}
	for _, ev := range drainEvents(t, r, 20) {
		if seen[string(ev.Data)] {
			t.Fatalf("duplicate event %q", ev.Data)
		}
		seen[string(ev.Data)] = true
	}
	expectNoEvent(t, r)
}

func TestTxnLeaseExpiryReaped(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "txns", "lease", 1)
	tw, err := sys.NewTransactionalWriter(TxnWriterConfig{
		Scope: "txns", Stream: "lease", Lease: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tw.Close()
	ctx := context.Background()
	txn, err := tw.BeginTxn(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.WriteEvent("k", []byte("never-seen")).Wait(); err != nil {
		t.Fatalf("txn write: %v", err)
	}

	// The reaper runs with the other policy loops and aborts the
	// transaction once the lease lapses.
	sys.Controller().StartPolicyLoops(20 * time.Millisecond)
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := txn.Status(ctx)
		if err != nil {
			t.Fatalf("Status: %v", err)
		}
		if st == TxnAborted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("txn still %v long after lease expiry", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := txn.Commit(ctx); !errors.Is(err, ErrTxnNotOpen) {
		t.Fatalf("commit of reaped txn: %v, want ErrTxnNotOpen", err)
	}

	rg, err := sys.NewReaderGroup("rg-lease", "txns", "lease")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	expectNoEvent(t, r)
}

func TestTxnBeginOnUnknownStream(t *testing.T) {
	sys := newTestSystem(t)
	if err := sys.CreateScope("txns"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewTransactionalWriter(TxnWriterConfig{Scope: "txns", Stream: "ghost"}); !errors.Is(err, ErrStreamNotFound) {
		t.Fatalf("writer on unknown stream: %v, want ErrStreamNotFound", err)
	}
}

func TestTxnContextCancellation(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "txns", "cancel", 1)
	tw, err := sys.NewTransactionalWriter(TxnWriterConfig{Scope: "txns", Stream: "cancel"})
	if err != nil {
		t.Fatal(err)
	}
	defer tw.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tw.BeginTxn(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("BeginTxn with cancelled ctx: %v", err)
	}
	if _, err := sys.Streams().SegmentCount(ctx, "txns", "cancel"); !errors.Is(err, context.Canceled) {
		t.Fatalf("SegmentCount with cancelled ctx: %v", err)
	}
	if err := sys.Streams().Seal(ctx, "txns", "cancel"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Seal with cancelled ctx: %v", err)
	}
}

// TestWriterIDsUnique guards the crypto/rand id fix: clock-derived ids used
// to collide when many writers were created in the same nanosecond tick.
func TestWriterIDsUnique(t *testing.T) {
	const goroutines, perG = 16, 64
	ids := make([][]string, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				cfg := WriterConfig{}
				cfg.defaults()
				ids[g] = append(ids[g], cfg.ID)
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[string]bool, goroutines*perG)
	for _, chunk := range ids {
		for _, id := range chunk {
			if seen[id] {
				t.Fatalf("duplicate writer id %s", id)
			}
			seen[id] = true
		}
	}
}
