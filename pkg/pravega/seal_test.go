package pravega

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestReadSealedStreamToCompletion: readers drain a sealed stream and then
// report a quiet tail instead of hanging; the group marks every segment
// completed.
func TestReadSealedStreamToCompletion(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "fin", "s", 3)
	w, err := sys.NewWriter(WriterConfig{Scope: "fin", Stream: "s"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	for i := 0; i < n; i++ {
		w.WriteEvent(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("e%03d", i)))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sys.SealStream("fin", "s"); err != nil {
		t.Fatal(err)
	}

	rg, err := sys.NewReaderGroup("rg-fin", "fin", "s")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := 0
	for got < n {
		if _, err := r.ReadNextEvent(2 * time.Second); err != nil {
			t.Fatalf("read %d/%d: %v", got, n, err)
		}
		got++
	}
	// Stream drained: further reads time out cleanly.
	if _, err := r.ReadNextEvent(300 * time.Millisecond); !errors.Is(err, ErrNoEvent) {
		t.Fatalf("after drain: %v", err)
	}
	if rg.UnreadSegments() != 0 {
		t.Fatalf("%d segments not completed", rg.UnreadSegments())
	}
}

// TestWriteToSealedStreamFails: a writer on a sealed stream gets errors,
// not hangs.
func TestWriteToSealedStreamFails(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "wseal", "s", 1)
	w, err := sys.NewWriter(WriterConfig{Scope: "wseal", Stream: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvent("k", []byte("ok")).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := sys.SealStream("wseal", "s"); err != nil {
		t.Fatal(err)
	}
	f := w.WriteEvent("k", []byte("too late"))
	select {
	case <-f.Done():
		if f.Err() == nil {
			t.Fatal("write to sealed stream succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write to sealed stream hung")
	}
}

// TestDeleteStreamEndToEnd: seal + delete removes the stream and its
// segments from the data plane.
func TestDeleteStreamEndToEnd(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "gone", "s", 2)
	w, err := sys.NewWriter(WriterConfig{Scope: "gone", Stream: "s"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w.WriteEvent(fmt.Sprintf("k%d", i), []byte("x"))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sys.SealStream("gone", "s"); err != nil {
		t.Fatal(err)
	}
	if err := sys.DeleteStream("gone", "s"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SegmentCount("gone", "s"); err == nil {
		t.Fatal("deleted stream still queryable")
	}
	if _, err := sys.NewWriter(WriterConfig{Scope: "gone", Stream: "s"}); err == nil {
		t.Fatal("writer created for deleted stream")
	}
}
