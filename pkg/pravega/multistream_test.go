package pravega

import (
	"fmt"
	"testing"
	"time"
)

// TestReaderGroupSpansStreams: a single reader group consumes a *set* of
// streams (§3.3's definition) with exactly-once delivery across all of
// them.
func TestReaderGroupSpansStreams(t *testing.T) {
	sys := newTestSystem(t)
	if err := sys.CreateScope("multi"); err != nil {
		t.Fatal(err)
	}
	const streams = 3
	const perStream = 40
	for s := 0; s < streams; s++ {
		if err := sys.CreateStream(StreamConfig{
			Scope: "multi", Name: fmt.Sprintf("s%d", s), InitialSegments: 2,
		}); err != nil {
			t.Fatal(err)
		}
		w, err := sys.NewWriter(WriterConfig{Scope: "multi", Stream: fmt.Sprintf("s%d", s)})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perStream; i++ {
			w.WriteEvent(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("s%d:%03d", s, i)))
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	rg, err := sys.NewReaderGroup("rg-multi", "multi", "s0", "s1", "s2")
	if err != nil {
		t.Fatal(err)
	}
	if got := rg.Streams(); len(got) != streams {
		t.Fatalf("Streams() = %v", got)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	got := map[string]bool{}
	perStreamCount := map[string]int{}
	total := streams * perStream
	for len(got) < total {
		ev, err := r.ReadNextEvent(3 * time.Second)
		if err != nil {
			t.Fatalf("read %d/%d: %v", len(got), total, err)
		}
		key := string(ev.Data)
		if got[key] {
			t.Fatalf("duplicate %q", key)
		}
		got[key] = true
		perStreamCount[ev.Stream]++
	}
	for s := 0; s < streams; s++ {
		name := fmt.Sprintf("s%d", s)
		if perStreamCount[name] != perStream {
			t.Fatalf("stream %s delivered %d events, want %d (by-stream: %v)",
				name, perStreamCount[name], perStream, perStreamCount)
		}
	}
}

// TestReaderGroupRequiresStream: a group over zero streams is invalid.
func TestReaderGroupRequiresStream(t *testing.T) {
	sys := newTestSystem(t)
	if err := sys.CreateScope("z"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewReaderGroup("empty", "z"); err == nil {
		t.Fatal("reader group without streams accepted")
	}
}
