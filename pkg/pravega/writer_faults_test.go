package pravega

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pravega-go/pravega/internal/client"
	"github.com/pravega-go/pravega/internal/segstore"
)

// ackFaultTransport decorates a DataTransport with an adversarial ack
// channel: completion callbacks are delayed by a random jitter and a
// fraction of SUCCESSFUL acks are converted into ErrDisconnected — the
// append was applied but the writer never learns it (a lost ack). Per-
// segment callback FIFO, the ordering contract segmentWriters rest on, is
// preserved by draining each segment's callbacks through one worker
// goroutine.
type ackFaultTransport struct {
	client.DataTransport
	mu      sync.Mutex
	rng     *rand.Rand
	workers map[string]chan func()
	wg      sync.WaitGroup
	dropped atomic.Int64
}

func newAckFaultTransport(base client.DataTransport, seed int64) *ackFaultTransport {
	return &ackFaultTransport{
		DataTransport: base,
		rng:           rand.New(rand.NewSource(seed)),
		workers:       make(map[string]chan func()),
	}
}

func (ft *ackFaultTransport) AppendAsync(name string, data []byte, writerID string, eventNum int64, eventCount int32, cb func(segstore.AppendResult)) {
	ft.DataTransport.AppendAsync(name, data, writerID, eventNum, eventCount, func(r segstore.AppendResult) {
		ft.mu.Lock()
		ch, ok := ft.workers[name]
		if !ok {
			ch = make(chan func(), 1024)
			ft.workers[name] = ch
			ft.wg.Add(1)
			go func() {
				defer ft.wg.Done()
				for f := range ch {
					f()
				}
			}()
		}
		delay := time.Duration(ft.rng.Intn(2000)) * time.Microsecond
		drop := r.Err == nil && ft.rng.Float64() < 0.25
		ft.mu.Unlock()
		ch <- func() {
			time.Sleep(delay)
			if drop {
				ft.dropped.Add(1)
				cb(segstore.AppendResult{Offset: -1, Err: client.ErrDisconnected})
				return
			}
			cb(r)
		}
	})
}

// stop drains the per-segment workers. Call only after every in-flight
// append has completed (writer closed).
func (ft *ackFaultTransport) stop() {
	ft.mu.Lock()
	for _, ch := range ft.workers {
		close(ch)
	}
	ft.workers = make(map[string]chan func())
	ft.mu.Unlock()
	ft.wg.Wait()
}

// TestWriterExactlyOnceUnderAckFaults is the writer's exactly-once
// conformance check under duplicated-effect acks: every lost ack forces the
// writer through its disconnect recovery (WriterState handshake + verbatim
// batch replay), and the server-side dedup must absorb the replays. The
// read-back asserts no loss, no duplicates, and contiguous per-key order.
// With PRAVEGA_TEST_TRANSPORT=tcp the same test runs over the wire
// transport, so both DataTransport implementations are covered.
func TestWriterExactlyOnceUnderAckFaults(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			sys := newTestSystem(t)
			scope := fmt.Sprintf("ackfault%d", seed)
			if err := sys.CreateScope(scope); err != nil {
				t.Fatalf("CreateScope: %v", err)
			}
			if err := sys.CreateStream(StreamConfig{Scope: scope, Name: "s", InitialSegments: 2}); err != nil {
				t.Fatalf("CreateStream: %v", err)
			}
			w, err := sys.NewWriter(WriterConfig{Scope: scope, Stream: "s"})
			if err != nil {
				t.Fatalf("NewWriter: %v", err)
			}
			ft := newAckFaultTransport(w.conn, seed)
			w.conn = ft

			const keys, perKey = 4, 50
			var futs []*WriteFuture
			for seq := 0; seq < perKey; seq++ {
				for k := 0; k < keys; k++ {
					futs = append(futs, w.WriteEvent(
						fmt.Sprintf("k%d", k),
						[]byte(fmt.Sprintf("k%d:%04d", k, seq))))
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			for i, f := range futs {
				if err := f.WaitCtx(ctx); err != nil {
					t.Fatalf("event %d not acked: %v", i, err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatalf("writer close: %v", err)
			}
			ft.stop()
			if ft.dropped.Load() == 0 {
				t.Fatal("fault transport dropped no acks; test exercised nothing")
			}

			rg, err := sys.NewReaderGroup("rg-"+scope, scope, "s")
			if err != nil {
				t.Fatalf("NewReaderGroup: %v", err)
			}
			r, err := rg.NewReader("r1")
			if err != nil {
				t.Fatalf("NewReader: %v", err)
			}
			defer r.Close()
			total := keys * perKey
			seen := make(map[string]bool, total)
			lastSeq := make(map[string]int, keys)
			deadline := time.Now().Add(60 * time.Second)
			for len(seen) < total {
				ev, err := r.ReadNextEvent(2 * time.Second)
				if errors.Is(err, ErrNoEvent) {
					if time.Now().After(deadline) {
						t.Fatalf("read stalled with %d/%d events", len(seen), total)
					}
					continue
				}
				if err != nil {
					t.Fatalf("ReadNextEvent: %v", err)
				}
				s := string(ev.Data)
				if seen[s] {
					t.Fatalf("duplicate event %q (replay not deduplicated)", s)
				}
				seen[s] = true
				key, seqStr, _ := strings.Cut(s, ":")
				seq, _ := strconv.Atoi(seqStr)
				last, present := lastSeq[key]
				if !present {
					last = -1
				}
				if seq != last+1 {
					t.Fatalf("key %s: seq %d after %d (order/loss violation)", key, seq, last)
				}
				lastSeq[key] = seq
			}
			t.Logf("seed %d: %d acks dropped, %d events exactly-once", seed, ft.dropped.Load(), total)
		})
	}
}
