package pravega

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"github.com/pravega-go/pravega/internal/segstore"
)

// ErrNoEvent is returned by ReadNextEvent when the timeout elapses with no
// event available (the stream tail was reached and nothing new arrived).
var ErrNoEvent = errors.New("pravega: no event within timeout")

// Event is one consumed stream event.
type Event struct {
	// Data is the event payload.
	Data []byte
	// Stream is the stream the event came from (reader groups may span
	// several streams).
	Stream string
	// Segment is the number of the segment the event came from.
	Segment int64
	// Offset is the event frame's start offset within the segment.
	Offset int64
}

// Reader consumes events from the segments its reader group assigns to it.
// Events with the same routing key are delivered in append order (§3.3).
type Reader struct {
	rg   *ReaderGroup
	name string

	mu       sync.Mutex
	owned    map[string]*ownedSegment
	rr       []string // round-robin order
	rrNext   int
	lastSync time.Time
	lastRev  int64 // synchronizer revision at the last full rebalance
	closed   bool

	// catchUpBytes sizes tail fetches; far-behind segments use larger
	// reads so historical catch-up saturates LTS streams (§5.7).
	fetchBytes int
}

// ownedSegment is one assigned segment's read cursor.
type ownedSegment struct {
	rec    rgSegment
	offset int64 // next segment offset to fetch
	buf    []byte
	bufAt  int64 // segment offset of buf[0]
	fetch  int   // adaptive fetch size (catch-up escalation)
}

// NewReader registers a reader in the group.
func (rg *ReaderGroup) NewReader(name string) (*Reader, error) {
	err := rg.sync.Update(func() ([]byte, error) {
		rg.mu.Lock()
		known := rg.state.readers[name]
		rg.mu.Unlock()
		if known {
			return nil, nil
		}
		return json.Marshal(rgUpdate{Op: "addReader", Reader: name})
	})
	if err != nil {
		return nil, err
	}
	return &Reader{rg: rg, name: name, owned: make(map[string]*ownedSegment), fetchBytes: 64 << 10}, nil
}

// rebalance refreshes group state and acquires segments up to the fair
// share. It also reconciles the local owned set with the group's view.
func (r *Reader) rebalance() error {
	if err := r.rg.sync.Fetch(); err != nil {
		return err
	}
	assigned, unassigned, readers := r.rg.snapshot()
	if readers == 0 {
		return nil
	}
	// Drop segments no longer ours (released or reassigned).
	r.mu.Lock()
	for qn := range r.owned {
		if assigned[qn] != r.name {
			delete(r.owned, qn)
		}
	}
	mine := 0
	for _, owner := range assigned {
		if owner == r.name {
			mine++
		}
	}
	total := len(assigned) + len(unassigned)
	fair := (total + readers - 1) / readers
	want := fair - mine

	// Over fair share (another reader joined): release surplus segments so
	// the group converges to a fair distribution (§3.3).
	var release []struct {
		qn  string
		off int64
	}
	if mine > fair {
		surplus := mine - fair
		for qn, seg := range r.owned {
			if surplus == 0 {
				break
			}
			release = append(release, struct {
				qn  string
				off int64
			}{qn, seg.bufAt})
			delete(r.owned, qn)
			surplus--
		}
	}
	r.mu.Unlock()
	for _, rel := range release {
		rel := rel
		err := r.rg.sync.Update(func() ([]byte, error) {
			r.rg.mu.Lock()
			ownedByMe := r.rg.state.assigned[rel.qn] == r.name
			r.rg.mu.Unlock()
			if !ownedByMe {
				return nil, nil
			}
			return json.Marshal(rgUpdate{Op: "release", Reader: r.name, Segment: rel.qn, Offset: rel.off})
		})
		if err != nil {
			return err
		}
	}

	for i := 0; i < len(unassigned) && want > 0; i++ {
		qn := unassigned[i]
		err := r.rg.sync.Update(func() ([]byte, error) {
			r.rg.mu.Lock()
			free := r.rg.state.unassigned[qn]
			r.rg.mu.Unlock()
			if !free {
				return nil, nil
			}
			return json.Marshal(rgUpdate{Op: "acquire", Reader: r.name, Segment: qn})
		})
		if err != nil {
			return err
		}
		want--
	}

	// Adopt newly acquired segments.
	assigned, _, _ = r.rg.snapshot()
	r.mu.Lock()
	for qn, owner := range assigned {
		if owner != r.name {
			continue
		}
		if _, ok := r.owned[qn]; !ok {
			rec, ok := r.rg.segmentRecord(qn)
			if !ok {
				continue
			}
			r.owned[qn] = &ownedSegment{rec: rec, offset: rec.StartOffset, bufAt: rec.StartOffset}
		}
	}
	r.rr = r.rr[:0]
	for qn := range r.owned {
		r.rr = append(r.rr, qn)
	}
	r.mu.Unlock()
	return nil
}

// maybeRebalance refreshes group state once the sync window has elapsed (or
// the reader owns nothing) and runs a full rebalance pass only when the
// group's replicated state actually changed since the last pass: the
// synchronizer revision is cached, so a quiet group costs one state fetch
// per window instead of a full reassignment scan with conditional updates.
func (r *Reader) maybeRebalance() error {
	r.mu.Lock()
	needSync := time.Since(r.lastSync) > 100*time.Millisecond || len(r.owned) == 0
	r.mu.Unlock()
	if !needSync {
		return nil
	}
	if err := r.rg.sync.Fetch(); err != nil {
		return convertErr(err)
	}
	rev := r.rg.sync.Updates()
	r.mu.Lock()
	unchanged := rev == r.lastRev && len(r.owned) > 0
	if unchanged {
		r.lastSync = time.Now()
	}
	r.mu.Unlock()
	if unchanged {
		mClientRebalancesSkipped.Inc()
		return nil
	}
	if err := r.rebalance(); err != nil {
		return convertErr(err)
	}
	mClientRebalances.Inc()
	// Cache the revision after our own acquire/release updates so they do
	// not trigger the next pass.
	rev = r.rg.sync.Updates()
	r.mu.Lock()
	r.lastRev = rev
	r.lastSync = time.Now()
	r.mu.Unlock()
	return nil
}

// ReadNextEvent returns the next event from any assigned segment, waiting
// up to timeout. It returns ErrNoEvent on a quiet tail.
//
// A timeout <= 0 performs exactly one non-blocking pass: a buffered event
// is returned if one is ready, otherwise one zero-wait fetch is attempted
// and ErrNoEvent is returned when it yields nothing.
func (r *Reader) ReadNextEvent(timeout time.Duration) (Event, error) {
	if timeout <= 0 {
		return r.readOnce()
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	ev, err := r.ReadNextEventCtx(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		return Event{}, ErrNoEvent
	}
	return ev, err
}

// ReadNextEventCtx returns the next event from any assigned segment,
// waiting until ctx is done. Cancellation propagates into the server-side
// tail long-poll, so the call unblocks promptly (not at the next poll
// boundary). An event already buffered locally is served even when ctx has
// expired; otherwise the error is ctx.Err().
func (r *Reader) ReadNextEventCtx(ctx context.Context) (Event, error) {
	for {
		r.mu.Lock()
		closed := r.closed
		r.mu.Unlock()
		if closed {
			return Event{}, ErrReaderClosed
		}
		if err := r.maybeRebalance(); err != nil {
			return Event{}, err
		}

		// Serve a buffered event if any segment has one.
		if ev, ok, err := r.popBuffered(); err != nil {
			return Event{}, convertErr(err)
		} else if ok {
			return ev, nil
		}

		if err := ctx.Err(); err != nil {
			return Event{}, err
		}

		// Fetch more data from the next segment in round-robin order.
		seg := r.nextSegment()
		if seg == nil {
			// Nothing assigned yet; wait briefly for assignments.
			if err := sleepCtx(ctx, 10*time.Millisecond); err != nil {
				return Event{}, err
			}
			continue
		}
		if err := r.fill(ctx, seg, 20*time.Millisecond); err != nil {
			return Event{}, err
		}
	}
}

// readOnce is the timeout <= 0 pass of ReadNextEvent: no sleeping and no
// tail long-poll anywhere.
func (r *Reader) readOnce() (Event, error) {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return Event{}, ErrReaderClosed
	}
	if err := r.maybeRebalance(); err != nil {
		return Event{}, err
	}
	if ev, ok, err := r.popBuffered(); err != nil {
		return Event{}, convertErr(err)
	} else if ok {
		return ev, nil
	}
	if seg := r.nextSegment(); seg != nil {
		if err := r.fill(context.Background(), seg, 0); err != nil {
			return Event{}, err
		}
		if ev, ok, err := r.popBuffered(); err != nil {
			return Event{}, convertErr(err)
		} else if ok {
			return ev, nil
		}
	}
	return Event{}, ErrNoEvent
}

// sleepCtx sleeps d or until ctx is done, returning ctx.Err() in the
// latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// popBuffered returns the first complete buffered event across owned
// segments.
func (r *Reader) popBuffered() (Event, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, seg := range r.owned {
		ev, rest, ok, err := decodeEventFrame(seg.buf)
		if err != nil {
			return Event{}, false, err
		}
		if !ok {
			continue
		}
		evOffset := seg.bufAt
		seg.bufAt += int64(len(seg.buf) - len(rest))
		seg.buf = rest
		out := Event{
			Data:    append([]byte(nil), ev...),
			Stream:  seg.rec.Stream,
			Segment: seg.rec.Number,
			Offset:  evOffset,
		}
		mClientEventsRead.Inc()
		return out, true, nil
	}
	return Event{}, false, nil
}

// nextSegment picks the next owned segment round-robin.
func (r *Reader) nextSegment() *ownedSegment {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.rr) == 0 {
		return nil
	}
	for i := 0; i < len(r.rr); i++ {
		qn := r.rr[r.rrNext%len(r.rr)]
		r.rrNext++
		if seg, ok := r.owned[qn]; ok {
			return seg
		}
	}
	return nil
}

// fill fetches bytes for one segment, handling tail long-polls, truncation
// jumps and end-of-segment completion. Far-behind cursors use large reads
// so catch-up saturates the historical read path (§5.7). Cancelling ctx
// unblocks a tail long-poll immediately; fill then returns ctx.Err().
func (r *Reader) fill(ctx context.Context, seg *ownedSegment, wait time.Duration) error {
	fetch := seg.fetch
	if fetch <= 0 {
		fetch = r.fetchBytes
	}
	res, err := r.rg.conn.ReadCtx(ctx, seg.rec.Qualified, seg.offset, fetch, wait)
	// Self-adapting fetch size: full reads mean the cursor is behind, so
	// escalate toward 1 MiB catch-up reads; short reads reset to the tail
	// size.
	if err == nil && !res.EndOfSegment {
		if len(res.Data) >= fetch {
			next := fetch * 4
			if next > 1<<20 {
				next = 1 << 20
			}
			seg.fetch = next
		} else {
			seg.fetch = r.fetchBytes
		}
	}
	switch {
	case err == nil:
	case errors.Is(err, segstore.ErrSegmentTruncated):
		// Retention moved the head; jump forward.
		info, ierr := r.rg.conn.GetInfo(seg.rec.Qualified)
		if ierr != nil {
			return convertErr(ierr)
		}
		r.mu.Lock()
		seg.offset = info.StartOffset
		seg.buf = nil
		seg.bufAt = info.StartOffset
		r.mu.Unlock()
		return nil
	default:
		return convertErr(err)
	}
	if res.EndOfSegment {
		// Finished this segment: tell the group and fetch successors
		// (§3.3). The group's barrier keeps merged successors pending
		// until all predecessors are done.
		r.mu.Lock()
		delete(r.owned, seg.rec.Qualified)
		r.mu.Unlock()
		if err := r.rg.completeSegment(seg.rec); err != nil {
			return convertErr(err)
		}
		return convertErr(r.rebalance())
	}
	if len(res.Data) > 0 {
		r.mu.Lock()
		seg.buf = append(seg.buf, res.Data...)
		seg.offset += int64(len(res.Data))
		r.mu.Unlock()
	}
	return nil
}

// Close releases the reader's segments back to the group.
func (r *Reader) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	owned := make(map[string]int64, len(r.owned))
	for qn, seg := range r.owned {
		owned[qn] = seg.bufAt // unconsumed buffered bytes re-read later
	}
	r.mu.Unlock()
	for qn, off := range owned {
		qn, off := qn, off
		err := r.rg.sync.Update(func() ([]byte, error) {
			return json.Marshal(rgUpdate{Op: "release", Reader: r.name, Segment: qn, Offset: off})
		})
		if err != nil {
			return err
		}
	}
	return r.rg.sync.Update(func() ([]byte, error) {
		r.rg.mu.Lock()
		member := r.rg.state.readers[r.name]
		r.rg.mu.Unlock()
		if !member {
			return nil, nil
		}
		return json.Marshal(rgUpdate{Op: "removeReader", Reader: r.name})
	})
}
