package pravega

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"github.com/pravega-go/pravega/internal/segstore"
)

// ErrNoEvent is returned by ReadNextEvent when the timeout elapses with no
// event available (the stream tail was reached and nothing new arrived).
var ErrNoEvent = errors.New("pravega: no event within timeout")

// Event is one consumed stream event.
type Event struct {
	// Data is the event payload. It aliases the reader's internal fetch
	// buffer: it stays valid indefinitely, but callers that modify it in
	// place should copy it first.
	Data []byte
	// Stream is the stream the event came from (reader groups may span
	// several streams).
	Stream string
	// Segment is the number of the segment the event came from.
	Segment int64
	// Offset is the event frame's start offset within the segment.
	Offset int64
}

// Reader consumes events from the segments its reader group assigns to it.
// Events with the same routing key are delivered in append order (§3.3).
type Reader struct {
	rg   *ReaderGroup
	name string

	mu       sync.Mutex
	owned    map[string]*ownedSegment
	rr       []string // round-robin order
	rrNext   int
	lastSync time.Time
	lastRev  int64 // synchronizer revision at the last full rebalance
	closed   bool

	// catchUpBytes sizes tail fetches; far-behind segments use larger
	// reads so historical catch-up saturates LTS streams (§5.7).
	fetchBytes int
}

// ownedSegment is one assigned segment's read cursor. All fields are
// guarded by Reader.mu; fetch I/O never holds the lock — it works on
// values snapshotted under it and re-validates before applying results.
type ownedSegment struct {
	rec    rgSegment
	offset int64 // next segment offset to fetch
	buf    []byte
	bufAt  int64 // segment offset of buf[0]
	fetch  int   // adaptive fetch size (catch-up escalation)

	// Catch-up pipelining: at most one outstanding async fetch per owned
	// segment, issued while buffered events drain, so the next batch is in
	// flight before the buffer runs dry (§5.7).
	inflight bool
	results  chan fetchResult
}

// fetchResult carries one completed fetch back to the reader loop. offset
// and fetch echo the request, so a result that raced a cursor jump or an
// ownership change is detected and dropped.
type fetchResult struct {
	res    segstore.ReadResult
	err    error
	offset int64
	fetch  int
}

// NewReader registers a reader in the group.
func (rg *ReaderGroup) NewReader(name string) (*Reader, error) {
	err := rg.sync.Update(func() ([]byte, error) {
		rg.mu.Lock()
		known := rg.state.readers[name]
		rg.mu.Unlock()
		if known {
			return nil, nil
		}
		return json.Marshal(rgUpdate{Op: "addReader", Reader: name})
	})
	if err != nil {
		return nil, err
	}
	return &Reader{rg: rg, name: name, owned: make(map[string]*ownedSegment), fetchBytes: 64 << 10}, nil
}

// rebalance refreshes group state and acquires segments up to the fair
// share. It also reconciles the local owned set with the group's view.
func (r *Reader) rebalance() error {
	if err := r.rg.sync.Fetch(); err != nil {
		return err
	}
	assigned, unassigned, readers := r.rg.snapshot()
	if readers == 0 {
		return nil
	}
	// Drop segments no longer ours (released or reassigned).
	r.mu.Lock()
	for qn := range r.owned {
		if assigned[qn] != r.name {
			delete(r.owned, qn)
		}
	}
	mine := 0
	for _, owner := range assigned {
		if owner == r.name {
			mine++
		}
	}
	total := len(assigned) + len(unassigned)
	fair := (total + readers - 1) / readers
	want := fair - mine

	// Over fair share (another reader joined): release surplus segments so
	// the group converges to a fair distribution (§3.3).
	var release []struct {
		qn  string
		off int64
	}
	if mine > fair {
		surplus := mine - fair
		for qn, seg := range r.owned {
			if surplus == 0 {
				break
			}
			release = append(release, struct {
				qn  string
				off int64
			}{qn, seg.bufAt})
			delete(r.owned, qn)
			surplus--
		}
	}
	r.mu.Unlock()
	for _, rel := range release {
		rel := rel
		err := r.rg.sync.Update(func() ([]byte, error) {
			r.rg.mu.Lock()
			ownedByMe := r.rg.state.assigned[rel.qn] == r.name
			r.rg.mu.Unlock()
			if !ownedByMe {
				return nil, nil
			}
			return json.Marshal(rgUpdate{Op: "release", Reader: r.name, Segment: rel.qn, Offset: rel.off})
		})
		if err != nil {
			return err
		}
	}

	for i := 0; i < len(unassigned) && want > 0; i++ {
		qn := unassigned[i]
		err := r.rg.sync.Update(func() ([]byte, error) {
			r.rg.mu.Lock()
			free := r.rg.state.unassigned[qn]
			r.rg.mu.Unlock()
			if !free {
				return nil, nil
			}
			return json.Marshal(rgUpdate{Op: "acquire", Reader: r.name, Segment: qn})
		})
		if err != nil {
			return err
		}
		want--
	}

	// Adopt newly acquired segments.
	assigned, _, _ = r.rg.snapshot()
	r.mu.Lock()
	for qn, owner := range assigned {
		if owner != r.name {
			continue
		}
		if _, ok := r.owned[qn]; !ok {
			rec, ok := r.rg.segmentRecord(qn)
			if !ok {
				continue
			}
			r.owned[qn] = &ownedSegment{rec: rec, offset: rec.StartOffset, bufAt: rec.StartOffset}
		}
	}
	r.rr = r.rr[:0]
	for qn := range r.owned {
		r.rr = append(r.rr, qn)
	}
	r.mu.Unlock()
	return nil
}

// maybeRebalance refreshes group state once the sync window has elapsed (or
// the reader owns nothing) and runs a full rebalance pass only when the
// group's replicated state actually changed since the last pass: the
// synchronizer revision is cached, so a quiet group costs one state fetch
// per window instead of a full reassignment scan with conditional updates.
func (r *Reader) maybeRebalance() error {
	r.mu.Lock()
	needSync := time.Since(r.lastSync) > 100*time.Millisecond || len(r.owned) == 0
	r.mu.Unlock()
	if !needSync {
		return nil
	}
	if err := r.rg.sync.Fetch(); err != nil {
		return convertErr(err)
	}
	rev := r.rg.sync.Updates()
	r.mu.Lock()
	unchanged := rev == r.lastRev && len(r.owned) > 0
	if unchanged {
		r.lastSync = time.Now()
	}
	r.mu.Unlock()
	if unchanged {
		mClientRebalancesSkipped.Inc()
		return nil
	}
	if err := r.rebalance(); err != nil {
		return convertErr(err)
	}
	mClientRebalances.Inc()
	// Cache the revision after our own acquire/release updates so they do
	// not trigger the next pass.
	rev = r.rg.sync.Updates()
	r.mu.Lock()
	r.lastRev = rev
	r.lastSync = time.Now()
	r.mu.Unlock()
	return nil
}

// ReadNextEvent returns the next event from any assigned segment, waiting
// up to timeout. It returns ErrNoEvent on a quiet tail.
//
// A timeout <= 0 performs exactly one non-blocking pass: a buffered event
// is returned if one is ready, otherwise one zero-wait fetch is attempted
// and ErrNoEvent is returned when it yields nothing.
func (r *Reader) ReadNextEvent(timeout time.Duration) (Event, error) {
	if timeout <= 0 {
		return r.readOnce()
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	ev, err := r.ReadNextEventCtx(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		return Event{}, ErrNoEvent
	}
	return ev, err
}

// ReadNextEventCtx returns the next event from any assigned segment,
// waiting until ctx is done. Cancellation propagates into the server-side
// tail long-poll, so the call unblocks promptly (not at the next poll
// boundary). An event already buffered locally is served even when ctx has
// expired; otherwise the error is ctx.Err().
func (r *Reader) ReadNextEventCtx(ctx context.Context) (Event, error) {
	for {
		r.mu.Lock()
		closed := r.closed
		r.mu.Unlock()
		if closed {
			return Event{}, ErrReaderClosed
		}
		if err := r.maybeRebalance(); err != nil {
			return Event{}, err
		}

		// Serve a buffered event if any segment has one.
		if ev, ok, err := r.popBuffered(); err != nil {
			return Event{}, convertErr(err)
		} else if ok {
			return ev, nil
		}

		if err := ctx.Err(); err != nil {
			return Event{}, err
		}

		// Fetch more data from the next segment in round-robin order.
		qn := r.nextSegment()
		if qn == "" {
			// Nothing assigned yet; wait briefly for assignments.
			if err := sleepCtx(ctx, 10*time.Millisecond); err != nil {
				return Event{}, err
			}
			continue
		}
		if err := r.fill(ctx, qn, 20*time.Millisecond); err != nil {
			return Event{}, err
		}
	}
}

// readOnce is the timeout <= 0 pass of ReadNextEvent: no sleeping and no
// tail long-poll anywhere.
func (r *Reader) readOnce() (Event, error) {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return Event{}, ErrReaderClosed
	}
	if err := r.maybeRebalance(); err != nil {
		return Event{}, err
	}
	if ev, ok, err := r.popBuffered(); err != nil {
		return Event{}, convertErr(err)
	} else if ok {
		return ev, nil
	}
	if qn := r.nextSegment(); qn != "" {
		if err := r.fill(context.Background(), qn, 0); err != nil {
			return Event{}, err
		}
		if ev, ok, err := r.popBuffered(); err != nil {
			return Event{}, convertErr(err)
		} else if ok {
			return ev, nil
		}
	}
	return Event{}, ErrNoEvent
}

// sleepCtx sleeps d or until ctx is done, returning ctx.Err() in the
// latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// popBuffered returns the first complete buffered event across owned
// segments. The event's Data slices the segment's fetch buffer directly —
// no per-event copy. That is safe because the buffer only ever grows at
// its end: handed-out events occupy positions strictly before the
// remainder that later appends extend.
func (r *Reader) popBuffered() (Event, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, seg := range r.owned {
		ev, rest, ok, err := decodeEventFrame(seg.buf)
		if err != nil {
			return Event{}, false, err
		}
		if !ok {
			continue
		}
		evOffset := seg.bufAt
		seg.bufAt += int64(len(seg.buf) - len(rest))
		seg.buf = rest
		out := Event{
			Data:    ev,
			Stream:  seg.rec.Stream,
			Segment: seg.rec.Number,
			Offset:  evOffset,
		}
		mClientEventsRead.Inc()
		// Keep the pipeline primed: when this segment is in catch-up mode
		// and its buffer is running dry, start the next fetch now so it
		// overlaps with the caller consuming this event.
		if !seg.inflight && seg.fetch > r.fetchBytes && len(seg.buf) < seg.fetch/2 {
			r.startPrefetchLocked(seg)
		}
		return out, true, nil
	}
	return Event{}, false, nil
}

// nextSegment picks the next owned segment round-robin, returning its
// qualified name ("" when nothing is owned). It returns a name rather than
// the *ownedSegment so no cursor state escapes r.mu.
func (r *Reader) nextSegment() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.rr) == 0 {
		return ""
	}
	for i := 0; i < len(r.rr); i++ {
		qn := r.rr[r.rrNext%len(r.rr)]
		r.rrNext++
		if _, ok := r.owned[qn]; ok {
			return qn
		}
	}
	return ""
}

// fill obtains more bytes for one segment. When a prefetch is already in
// flight it waits up to `wait` for that result instead of issuing a second
// read; otherwise it performs one synchronous fetch. All cursor state is
// read and written under r.mu — the I/O itself runs on snapshotted values
// and results are re-validated against the live cursor before applying.
func (r *Reader) fill(ctx context.Context, qn string, wait time.Duration) error {
	r.mu.Lock()
	seg, ok := r.owned[qn]
	if !ok {
		r.mu.Unlock()
		return nil // lost ownership since nextSegment; next loop re-picks
	}
	if seg.inflight {
		ch := seg.results
		r.mu.Unlock()
		if wait <= 0 {
			select {
			case fr := <-ch:
				r.harvest(qn, seg)
				return r.applyFetch(qn, fr)
			default:
				return nil
			}
		}
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case fr := <-ch:
			r.harvest(qn, seg)
			return r.applyFetch(qn, fr)
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
			return nil // re-loop; other segments may have data meanwhile
		}
	}
	offset := seg.offset
	fetch := seg.fetch
	if fetch <= 0 {
		fetch = r.fetchBytes
	}
	r.mu.Unlock()

	res, err := r.rg.conn.ReadCtx(ctx, qn, offset, fetch, wait)
	return r.applyFetch(qn, fetchResult{res: res, err: err, offset: offset, fetch: fetch})
}

// harvest clears a segment's inflight flag after its result was taken from
// the channel, guarding against the segment having been dropped and
// re-acquired (a fresh ownedSegment) in between.
func (r *Reader) harvest(qn string, seg *ownedSegment) {
	r.mu.Lock()
	if cur, ok := r.owned[qn]; ok && cur == seg {
		seg.inflight = false
	}
	r.mu.Unlock()
}

// startPrefetchLocked issues the segment's next fetch asynchronously.
// Caller holds r.mu. The fetch uses a zero wait (no tail long-poll): it is
// only started in catch-up mode, where data is known to be available.
func (r *Reader) startPrefetchLocked(seg *ownedSegment) {
	if r.closed || seg.inflight {
		return
	}
	fetch := seg.fetch
	if fetch <= 0 {
		fetch = r.fetchBytes
	}
	if seg.results == nil {
		seg.results = make(chan fetchResult, 1)
	}
	seg.inflight = true
	qn := seg.rec.Qualified
	offset := seg.offset
	ch := seg.results
	mClientPrefetches.Inc()
	go func() {
		res, err := r.rg.conn.ReadCtx(context.Background(), qn, offset, fetch, 0)
		ch <- fetchResult{res: res, err: err, offset: offset, fetch: fetch}
	}()
}

// applyFetch folds one fetch outcome into the segment's cursor, handling
// tail long-polls, truncation jumps and end-of-segment completion.
// Far-behind cursors escalate their fetch size so catch-up saturates the
// historical read path (§5.7). Results that raced a cursor jump or an
// ownership change (offset mismatch, segment replaced) are dropped.
func (r *Reader) applyFetch(qn string, fr fetchResult) error {
	switch {
	case fr.err == nil:
	case errors.Is(fr.err, segstore.ErrSegmentTruncated):
		// Retention moved the head; jump forward.
		info, ierr := r.rg.conn.GetInfo(qn)
		if ierr != nil {
			return convertErr(ierr)
		}
		r.mu.Lock()
		if seg, ok := r.owned[qn]; ok && seg.offset < info.StartOffset {
			seg.offset = info.StartOffset
			seg.buf = nil
			seg.bufAt = info.StartOffset
		}
		r.mu.Unlock()
		return nil
	default:
		return convertErr(fr.err)
	}
	if fr.res.EndOfSegment {
		r.mu.Lock()
		seg, ok := r.owned[qn]
		if !ok || seg.offset != fr.offset {
			r.mu.Unlock()
			return nil // stale: cursor moved since this fetch was issued
		}
		rec := seg.rec
		delete(r.owned, qn)
		r.mu.Unlock()
		if err := r.rg.completeSegment(rec); err != nil {
			return convertErr(err)
		}
		return convertErr(r.rebalance())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seg, ok := r.owned[qn]
	if !ok || seg.offset != fr.offset {
		return nil // stale result; drop
	}
	// Self-adapting fetch size: full reads mean the cursor is behind, so
	// escalate toward 1 MiB catch-up reads; short reads reset to the tail
	// size.
	full := len(fr.res.Data) >= fr.fetch
	if full {
		next := fr.fetch * 4
		if next > 1<<20 {
			next = 1 << 20
		}
		seg.fetch = next
	} else {
		seg.fetch = r.fetchBytes
	}
	if len(fr.res.Data) > 0 {
		seg.buf = append(seg.buf, fr.res.Data...)
		seg.offset += int64(len(fr.res.Data))
		if full && !seg.inflight {
			// Catch-up pipelining: the next batch is fetched while the
			// caller drains this one.
			r.startPrefetchLocked(seg)
		}
	}
	return nil
}

// Close releases the reader's segments back to the group.
func (r *Reader) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	owned := make(map[string]int64, len(r.owned))
	for qn, seg := range r.owned {
		owned[qn] = seg.bufAt // unconsumed buffered bytes re-read later
	}
	r.mu.Unlock()
	for qn, off := range owned {
		qn, off := qn, off
		err := r.rg.sync.Update(func() ([]byte, error) {
			return json.Marshal(rgUpdate{Op: "release", Reader: r.name, Segment: qn, Offset: off})
		})
		if err != nil {
			return err
		}
	}
	return r.rg.sync.Update(func() ([]byte, error) {
		r.rg.mu.Lock()
		member := r.rg.state.readers[r.name]
		r.rg.mu.Unlock()
		if !member {
			return nil, nil
		}
		return json.Marshal(rgUpdate{Op: "removeReader", Reader: r.name})
	})
}
