package pravega

import (
	"encoding/json"
	"errors"
	"sync"
	"time"

	"github.com/pravega-go/pravega/internal/segstore"
)

// ErrNoEvent is returned by ReadNextEvent when the timeout elapses with no
// event available (the stream tail was reached and nothing new arrived).
var ErrNoEvent = errors.New("pravega: no event within timeout")

// Event is one consumed stream event.
type Event struct {
	// Data is the event payload.
	Data []byte
	// Stream is the stream the event came from (reader groups may span
	// several streams).
	Stream string
	// Segment is the number of the segment the event came from.
	Segment int64
	// Offset is the event frame's start offset within the segment.
	Offset int64
}

// Reader consumes events from the segments its reader group assigns to it.
// Events with the same routing key are delivered in append order (§3.3).
type Reader struct {
	rg   *ReaderGroup
	name string

	mu       sync.Mutex
	owned    map[string]*ownedSegment
	rr       []string // round-robin order
	rrNext   int
	lastSync time.Time
	closed   bool

	// catchUpBytes sizes tail fetches; far-behind segments use larger
	// reads so historical catch-up saturates LTS streams (§5.7).
	fetchBytes int
}

// ownedSegment is one assigned segment's read cursor.
type ownedSegment struct {
	rec    rgSegment
	offset int64 // next segment offset to fetch
	buf    []byte
	bufAt  int64 // segment offset of buf[0]
	fetch  int   // adaptive fetch size (catch-up escalation)
}

// NewReader registers a reader in the group.
func (rg *ReaderGroup) NewReader(name string) (*Reader, error) {
	err := rg.sync.Update(func() ([]byte, error) {
		rg.mu.Lock()
		known := rg.state.readers[name]
		rg.mu.Unlock()
		if known {
			return nil, nil
		}
		return json.Marshal(rgUpdate{Op: "addReader", Reader: name})
	})
	if err != nil {
		return nil, err
	}
	return &Reader{rg: rg, name: name, owned: make(map[string]*ownedSegment), fetchBytes: 64 << 10}, nil
}

// rebalance refreshes group state and acquires segments up to the fair
// share. It also reconciles the local owned set with the group's view.
func (r *Reader) rebalance() error {
	if err := r.rg.sync.Fetch(); err != nil {
		return err
	}
	assigned, unassigned, readers := r.rg.snapshot()
	if readers == 0 {
		return nil
	}
	// Drop segments no longer ours (released or reassigned).
	r.mu.Lock()
	for qn := range r.owned {
		if assigned[qn] != r.name {
			delete(r.owned, qn)
		}
	}
	mine := 0
	for _, owner := range assigned {
		if owner == r.name {
			mine++
		}
	}
	total := len(assigned) + len(unassigned)
	fair := (total + readers - 1) / readers
	want := fair - mine

	// Over fair share (another reader joined): release surplus segments so
	// the group converges to a fair distribution (§3.3).
	var release []struct {
		qn  string
		off int64
	}
	if mine > fair {
		surplus := mine - fair
		for qn, seg := range r.owned {
			if surplus == 0 {
				break
			}
			release = append(release, struct {
				qn  string
				off int64
			}{qn, seg.bufAt})
			delete(r.owned, qn)
			surplus--
		}
	}
	r.mu.Unlock()
	for _, rel := range release {
		rel := rel
		err := r.rg.sync.Update(func() ([]byte, error) {
			r.rg.mu.Lock()
			ownedByMe := r.rg.state.assigned[rel.qn] == r.name
			r.rg.mu.Unlock()
			if !ownedByMe {
				return nil, nil
			}
			return json.Marshal(rgUpdate{Op: "release", Reader: r.name, Segment: rel.qn, Offset: rel.off})
		})
		if err != nil {
			return err
		}
	}

	for i := 0; i < len(unassigned) && want > 0; i++ {
		qn := unassigned[i]
		err := r.rg.sync.Update(func() ([]byte, error) {
			r.rg.mu.Lock()
			free := r.rg.state.unassigned[qn]
			r.rg.mu.Unlock()
			if !free {
				return nil, nil
			}
			return json.Marshal(rgUpdate{Op: "acquire", Reader: r.name, Segment: qn})
		})
		if err != nil {
			return err
		}
		want--
	}

	// Adopt newly acquired segments.
	assigned, _, _ = r.rg.snapshot()
	r.mu.Lock()
	for qn, owner := range assigned {
		if owner != r.name {
			continue
		}
		if _, ok := r.owned[qn]; !ok {
			rec, ok := r.rg.segmentRecord(qn)
			if !ok {
				continue
			}
			r.owned[qn] = &ownedSegment{rec: rec, offset: rec.StartOffset, bufAt: rec.StartOffset}
		}
	}
	r.rr = r.rr[:0]
	for qn := range r.owned {
		r.rr = append(r.rr, qn)
	}
	r.mu.Unlock()
	return nil
}

// ReadNextEvent returns the next event from any assigned segment, waiting
// up to timeout. It returns ErrNoEvent on a quiet tail.
func (r *Reader) ReadNextEvent(timeout time.Duration) (Event, error) {
	deadline := time.Now().Add(timeout)
	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return Event{}, errors.New("pravega: reader closed")
		}
		needSync := time.Since(r.lastSync) > 100*time.Millisecond || len(r.owned) == 0
		r.mu.Unlock()
		if needSync {
			if err := r.rebalance(); err != nil {
				return Event{}, err
			}
			r.mu.Lock()
			r.lastSync = time.Now()
			r.mu.Unlock()
		}

		// Serve a buffered event if any segment has one.
		if ev, ok, err := r.popBuffered(); err != nil {
			return Event{}, err
		} else if ok {
			return ev, nil
		}

		remain := time.Until(deadline)
		if remain <= 0 {
			return Event{}, ErrNoEvent
		}

		// Fetch more data from the next segment in round-robin order.
		seg := r.nextSegment()
		if seg == nil {
			// Nothing assigned yet; wait briefly for assignments.
			sleep := 10 * time.Millisecond
			if sleep > remain {
				sleep = remain
			}
			time.Sleep(sleep)
			continue
		}
		if err := r.fill(seg, remain); err != nil {
			return Event{}, err
		}
	}
}

// popBuffered returns the first complete buffered event across owned
// segments.
func (r *Reader) popBuffered() (Event, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, seg := range r.owned {
		ev, rest, ok, err := decodeEventFrame(seg.buf)
		if err != nil {
			return Event{}, false, err
		}
		if !ok {
			continue
		}
		evOffset := seg.bufAt
		seg.bufAt += int64(len(seg.buf) - len(rest))
		seg.buf = rest
		out := Event{
			Data:    append([]byte(nil), ev...),
			Stream:  seg.rec.Stream,
			Segment: seg.rec.Number,
			Offset:  evOffset,
		}
		return out, true, nil
	}
	return Event{}, false, nil
}

// nextSegment picks the next owned segment round-robin.
func (r *Reader) nextSegment() *ownedSegment {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.rr) == 0 {
		return nil
	}
	for i := 0; i < len(r.rr); i++ {
		qn := r.rr[r.rrNext%len(r.rr)]
		r.rrNext++
		if seg, ok := r.owned[qn]; ok {
			return seg
		}
	}
	return nil
}

// fill fetches bytes for one segment, handling tail long-polls, truncation
// jumps and end-of-segment completion. Far-behind cursors use large reads
// so catch-up saturates the historical read path (§5.7).
func (r *Reader) fill(seg *ownedSegment, maxWait time.Duration) error {
	wait := 20 * time.Millisecond
	if wait > maxWait {
		wait = maxWait
	}
	fetch := seg.fetch
	if fetch <= 0 {
		fetch = r.fetchBytes
	}
	res, err := r.rg.conn.Read(seg.rec.Qualified, seg.offset, fetch, wait)
	// Self-adapting fetch size: full reads mean the cursor is behind, so
	// escalate toward 1 MiB catch-up reads; short reads reset to the tail
	// size.
	if err == nil && !res.EndOfSegment {
		if len(res.Data) >= fetch {
			next := fetch * 4
			if next > 1<<20 {
				next = 1 << 20
			}
			seg.fetch = next
		} else {
			seg.fetch = r.fetchBytes
		}
	}
	switch {
	case err == nil:
	case errors.Is(err, segstore.ErrSegmentTruncated):
		// Retention moved the head; jump forward.
		info, ierr := r.rg.conn.GetInfo(seg.rec.Qualified)
		if ierr != nil {
			return ierr
		}
		r.mu.Lock()
		seg.offset = info.StartOffset
		seg.buf = nil
		seg.bufAt = info.StartOffset
		r.mu.Unlock()
		return nil
	default:
		return err
	}
	if res.EndOfSegment {
		// Finished this segment: tell the group and fetch successors
		// (§3.3). The group's barrier keeps merged successors pending
		// until all predecessors are done.
		r.mu.Lock()
		delete(r.owned, seg.rec.Qualified)
		r.mu.Unlock()
		if err := r.rg.completeSegment(seg.rec); err != nil {
			return err
		}
		return r.rebalance()
	}
	if len(res.Data) > 0 {
		r.mu.Lock()
		seg.buf = append(seg.buf, res.Data...)
		seg.offset += int64(len(res.Data))
		r.mu.Unlock()
	}
	return nil
}

// Close releases the reader's segments back to the group.
func (r *Reader) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	owned := make(map[string]int64, len(r.owned))
	for qn, seg := range r.owned {
		owned[qn] = seg.bufAt // unconsumed buffered bytes re-read later
	}
	r.mu.Unlock()
	for qn, off := range owned {
		qn, off := qn, off
		err := r.rg.sync.Update(func() ([]byte, error) {
			return json.Marshal(rgUpdate{Op: "release", Reader: r.name, Segment: qn, Offset: off})
		})
		if err != nil {
			return err
		}
	}
	return r.rg.sync.Update(func() ([]byte, error) {
		r.rg.mu.Lock()
		member := r.rg.state.readers[r.name]
		r.rg.mu.Unlock()
		if !member {
			return nil, nil
		}
		return json.Marshal(rgUpdate{Op: "removeReader", Reader: r.name})
	})
}
