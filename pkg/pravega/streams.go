package pravega

import (
	"context"
	"fmt"

	"github.com/pravega-go/pravega/internal/controller"
)

// StreamManager consolidates stream administration behind one accessor with
// context-first signatures: every verb takes a context.Context as its first
// parameter and honors cancellation (see DESIGN.md §"Context convention").
// Obtain it with System.Streams; the legacy System admin methods are thin
// deprecated wrappers over this type.
type StreamManager struct {
	sys *System
}

// Streams returns the stream administration API.
func (s *System) Streams() *StreamManager { return &StreamManager{sys: s} }

// runCtx executes one blocking control-plane call under ctx: cancellation
// abandons the wait and returns ctx.Err(). The call itself still completes
// on the server — admin verbs are idempotent or versioned, so a repeat
// after cancellation is safe.
func runCtx(ctx context.Context, f func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// runCtxVal is runCtx for calls returning a value. The result travels
// through the channel — never through a captured variable, which would race
// with the caller when cancellation abandons the wait.
func runCtxVal[T any](ctx context.Context, f func() (T, error)) (T, error) {
	var zero T
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	type res struct {
		v   T
		err error
	}
	done := make(chan res, 1)
	go func() {
		v, err := f()
		done <- res{v, err}
	}()
	select {
	case r := <-done:
		return r.v, r.err
	case <-ctx.Done():
		return zero, ctx.Err()
	}
}

// CreateScope registers a stream namespace.
func (m *StreamManager) CreateScope(ctx context.Context, scope string) error {
	return runCtx(ctx, func() error { return convertErr(m.sys.control.CreateScope(scope)) })
}

// Create creates a stream.
func (m *StreamManager) Create(ctx context.Context, cfg StreamConfig) error {
	return runCtx(ctx, func() error {
		return convertErr(m.sys.control.CreateStream(controller.StreamConfig{
			Scope:           cfg.Scope,
			Name:            cfg.Name,
			InitialSegments: cfg.InitialSegments,
			Scaling:         toInternalScaling(cfg.Scaling),
			Retention: controller.RetentionPolicy{
				Type:          controller.RetentionType(orDefault(string(cfg.Retention.Type), string(RetentionNone))),
				LimitBytes:    cfg.Retention.LimitBytes,
				LimitDuration: cfg.Retention.LimitDuration,
			},
		}))
	})
}

// Seal makes a stream read-only: every active segment is sealed (the
// tail-drain — in-flight appends resolve before the seal lands) and no
// further appends are accepted anywhere on the stream.
func (m *StreamManager) Seal(ctx context.Context, scope, stream string) error {
	return runCtx(ctx, func() error { return convertErr(m.sys.control.SealStream(scope, stream)) })
}

// Delete removes a sealed stream and all its segments.
func (m *StreamManager) Delete(ctx context.Context, scope, stream string) error {
	return runCtx(ctx, func() error { return convertErr(m.sys.control.DeleteStream(scope, stream)) })
}

// Scale manually splits one active segment into factor successors
// (auto-scaling does this from load; the manual form serves admin tooling).
func (m *StreamManager) Scale(ctx context.Context, scope, stream string, segmentNumber int64, factor int) error {
	return runCtx(ctx, func() error {
		segs, err := m.sys.control.GetActiveSegments(scope, stream)
		if err != nil {
			return convertErr(err)
		}
		for _, sr := range segs {
			if sr.ID.Number == segmentNumber {
				return convertErr(m.sys.control.Scale(scope, stream, []int64{segmentNumber}, sr.KeyRange.Split(factor)))
			}
		}
		return fmt.Errorf("pravega: segment %d is not active in %s/%s", segmentNumber, scope, stream)
	})
}

// Truncate drops the whole stream history up to "now": it records the
// current tail as a stream cut and truncates there.
func (m *StreamManager) Truncate(ctx context.Context, scope, stream string) error {
	return runCtx(ctx, func() error {
		segs, err := m.sys.control.GetActiveSegments(scope, stream)
		if err != nil {
			return convertErr(err)
		}
		d := m.sys.newData()
		defer d.Close()
		cut := make(controller.StreamCut, len(segs))
		for _, sr := range segs {
			info, err := d.GetInfo(sr.ID.QualifiedName())
			if err != nil {
				return convertErr(err)
			}
			cut[sr.ID.Number] = info.Length
		}
		return convertErr(m.sys.control.TruncateStream(scope, stream, cut))
	})
}

// UpdatePolicies replaces a stream's scaling and retention policies at
// runtime (§2.1). A nil policy leaves that policy unchanged.
func (m *StreamManager) UpdatePolicies(ctx context.Context, scope, stream string, scaling *ScalingPolicy, retention *RetentionPolicy) error {
	return runCtx(ctx, func() error {
		var sp *controller.ScalingPolicy
		if scaling != nil {
			v := toInternalScaling(*scaling)
			sp = &v
		}
		var rp *controller.RetentionPolicy
		if retention != nil {
			rp = &controller.RetentionPolicy{
				Type:          controller.RetentionType(retention.Type),
				LimitBytes:    retention.LimitBytes,
				LimitDuration: retention.LimitDuration,
			}
		}
		return convertErr(m.sys.control.UpdateStreamPolicies(scope, stream, sp, rp))
	})
}

// SegmentCount reports the stream's current parallelism.
func (m *StreamManager) SegmentCount(ctx context.Context, scope, stream string) (int, error) {
	return runCtxVal(ctx, func() (int, error) {
		n, err := m.sys.control.SegmentCount(scope, stream)
		return n, convertErr(err)
	})
}
