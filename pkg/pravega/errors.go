package pravega

import (
	"errors"

	"github.com/pravega-go/pravega/internal/client"
	"github.com/pravega-go/pravega/internal/controller"
	"github.com/pravega-go/pravega/internal/segstore"
)

// Sentinel errors of the public client API. Errors returned by this package
// match these with errors.Is; where an error originates in an internal
// layer, errors.Is also matches the internal sentinel (the chain carries
// both), so existing code that tested internal sentinels keeps working while
// new code depends only on this package.
var (
	// ErrReaderClosed is returned by operations on a closed Reader.
	ErrReaderClosed = errors.New("pravega: reader closed")
	// ErrWriterClosed is returned by WriteEvent on a closed EventWriter.
	ErrWriterClosed = errors.New("pravega: writer closed")
	// ErrScopeExists is returned when creating a scope that already exists.
	ErrScopeExists = errors.New("pravega: scope already exists")
	// ErrScopeNotFound is returned for operations on an unknown scope.
	ErrScopeNotFound = errors.New("pravega: scope not found")
	// ErrStreamExists is returned when creating a stream that already exists.
	ErrStreamExists = errors.New("pravega: stream already exists")
	// ErrStreamNotFound is returned for operations on an unknown stream.
	ErrStreamNotFound = errors.New("pravega: stream not found")
	// ErrStreamSealed is returned when appending to (or scaling) a sealed
	// stream.
	ErrStreamSealed = errors.New("pravega: stream is sealed")
	// ErrSegmentSealed is returned for appends or reads addressed to a
	// sealed segment.
	ErrSegmentSealed = errors.New("pravega: segment is sealed")
	// ErrSegmentNotFound is returned for operations on an unknown segment.
	ErrSegmentNotFound = errors.New("pravega: segment not found")
	// ErrSegmentTruncated is returned when reading below a segment's
	// truncation point (retention moved the head past the offset).
	ErrSegmentTruncated = errors.New("pravega: offset below truncation point")
	// ErrTxnNotFound is returned for operations on an unknown transaction
	// (never begun, or already reaped after commit/abort).
	ErrTxnNotFound = errors.New("pravega: transaction not found")
	// ErrTxnNotOpen is returned when committing or writing to a transaction
	// that is no longer open (aborted, lease-expired, or already on the
	// other terminal path).
	ErrTxnNotOpen = errors.New("pravega: transaction is not open")
	// ErrTxnClosed is returned by WriteEvent on a transaction whose Commit
	// or Abort was already invoked locally.
	ErrTxnClosed = errors.New("pravega: transaction closed")
	// ErrDisconnected is returned by a remote System (Connect) when an
	// operation could not complete because the connection to the server was
	// lost and not re-established within the retry window. Writers recover
	// from it transparently (their futures only fail after the window
	// elapses); synchronous callers may retry once connectivity returns.
	ErrDisconnected = errors.New("pravega: disconnected from server")
)

// apiError pairs a public sentinel with its internal cause. Unwrap returns
// both (Go 1.20 multi-error unwrapping), so errors.Is matches the public
// sentinel and the internal one.
type apiError struct {
	public error
	cause  error
}

func (e *apiError) Error() string   { return e.cause.Error() }
func (e *apiError) Unwrap() []error { return []error{e.public, e.cause} }

// sentinelPairs maps internal sentinels to their public counterparts, in
// match order.
var sentinelPairs = []struct{ internal, public error }{
	{segstore.ErrSegmentSealed, ErrSegmentSealed},
	{segstore.ErrSegmentNotFound, ErrSegmentNotFound},
	{segstore.ErrSegmentTruncated, ErrSegmentTruncated},
	{segstore.ErrSegmentExists, ErrSegmentExists},
	{controller.ErrScopeExists, ErrScopeExists},
	{controller.ErrScopeNotFound, ErrScopeNotFound},
	{controller.ErrStreamExists, ErrStreamExists},
	{controller.ErrStreamNotFound, ErrStreamNotFound},
	{controller.ErrStreamSealed, ErrStreamSealed},
	{controller.ErrTxnNotFound, ErrTxnNotFound},
	{controller.ErrTxnNotOpen, ErrTxnNotOpen},
	{client.ErrDisconnected, ErrDisconnected},
}

// ErrSegmentExists is returned when creating a segment that already exists
// (surfaces through advanced/admin paths).
var ErrSegmentExists = errors.New("pravega: segment already exists")

// convertErr translates an error crossing the API boundary: when the chain
// contains a known internal sentinel, the result additionally matches the
// public counterpart. The original message and chain are preserved.
func convertErr(err error) error {
	if err == nil {
		return nil
	}
	for _, p := range sentinelPairs {
		if errors.Is(err, p.internal) {
			return &apiError{public: p.public, cause: err}
		}
	}
	return err
}
