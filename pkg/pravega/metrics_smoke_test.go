package pravega_test

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/pravega-go/pravega/internal/hosting"
	"github.com/pravega-go/pravega/pkg/pravega"
)

// TestMetricsEndpointSmoke starts a system with the observability endpoint,
// runs a write/read workload, scrapes /metrics and asserts every
// instrumented layer exports non-zero series.
func TestMetricsEndpointSmoke(t *testing.T) {
	sys, err := pravega.NewInProcess(pravega.SystemConfig{
		Cluster:          hosting.ClusterConfig{Stores: 2, ContainersPerStore: 2},
		MetricsAddr:      "127.0.0.1:0",
		TraceSampleEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	addr := sys.MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr empty after configuring an endpoint")
	}

	if err := sys.CreateScope("obs"); err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateStream(pravega.StreamConfig{Scope: "obs", Name: "s", InitialSegments: 2}); err != nil {
		t.Fatal(err)
	}
	w, err := sys.NewWriter(pravega.WriterConfig{Scope: "obs", Stream: "s"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		w.WriteEvent(fmt.Sprintf("key-%d", i%11), []byte(fmt.Sprintf("event-%04d", i)))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rg, err := sys.NewReaderGroup("rg", "obs", "s")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for n := 0; n < 500; n++ {
		if _, err := r.ReadNextEvent(2 * time.Second); err != nil {
			t.Fatalf("read %d: %v", n, err)
		}
	}

	body := scrape(t, "http://"+addr+"/metrics")

	// Every layer must export, and the workload must have moved the needle.
	for _, series := range []string{
		"pravega_segstore_queue_depth",
		"pravega_segstore_frame_ops",
		"pravega_segstore_apply_us_count",
		"pravega_segstore_append_bytes_total",
		"pravega_wal_appends_total",
		"pravega_wal_append_us_count",
		"pravega_readindex_lookups_total",
		"pravega_blockcache_hits_total",
		"pravega_blockcache_used_bytes",
		"pravega_client_events_written_total",
		"pravega_client_events_read_total",
		"pravega_client_write_rtt_us_count",
		"pravega_client_batch_fill_pct_count",
		"pravega_client_rebalances_total",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing series %s", series)
			continue
		}
	}
	for _, nonZero := range []string{
		"pravega_segstore_frame_ops_count",
		"pravega_wal_appends_total",
		"pravega_readindex_lookups_total",
		"pravega_client_events_written_total",
		"pravega_client_events_read_total",
	} {
		v, ok := seriesValue(body, nonZero)
		if !ok {
			t.Errorf("/metrics has no parsable value for %s", nonZero)
			continue
		}
		if v <= 0 {
			t.Errorf("%s = %v, want > 0 after workload", nonZero, v)
		}
	}

	// Sampled spans should have been collected at 1/8 over 500 appends.
	traces := scrape(t, "http://"+addr+"/debug/traces")
	if !strings.Contains(traces, `"segment"`) {
		t.Errorf("/debug/traces has no spans after sampled workload: %s", truncate(traces, 200))
	}
}

// scrape GETs a URL and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// seriesValue extracts the first sample value of an exact series name from
// Prometheus text exposition.
func seriesValue(body, name string) (float64, bool) {
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(?:\{[^}]*\})? (-?[0-9.e+-]+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		return 0, false
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
