package pravega

import (
	"testing"

	"github.com/pravega-go/pravega/internal/hosting"
	"github.com/pravega-go/pravega/internal/wire"
)

// benchSystem builds a 1-store/1-container deployment, either used directly
// (in-process transport) or fronted by a loopback wire server and reached
// through pravega.Connect. The pair makes the transports directly
// comparable: same data path behind the boundary, only the client transport
// differs.
func benchSystem(b *testing.B, tcp bool) *System {
	b.Helper()
	backing, err := NewInProcess(SystemConfig{
		Cluster: hosting.ClusterConfig{Stores: 1, ContainersPerStore: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	if !tcp {
		b.Cleanup(backing.Close)
		return backing
	}
	srv, err := wire.NewServer(backing.Cluster(), backing.Controller(), "127.0.0.1:0")
	if err != nil {
		backing.Close()
		b.Fatal(err)
	}
	sys, err := Connect(srv.Addr(), ClientConfig{})
	if err != nil {
		_ = srv.Close()
		backing.Close()
		b.Fatal(err)
	}
	b.Cleanup(func() {
		_ = sys.remote.Close()
		_ = srv.Close()
		backing.Close()
	})
	return sys
}

// benchWriter measures pipelined 100 B event writes through the public API,
// acknowledging in windows of 256 so the writer's batching and the
// transport's pipelining both engage.
func benchWriter(b *testing.B, tcp bool) {
	sys := benchSystem(b, tcp)
	if err := sys.CreateScope("bench"); err != nil {
		b.Fatal(err)
	}
	if err := sys.CreateStream(StreamConfig{Scope: "bench", Name: "s", InitialSegments: 1}); err != nil {
		b.Fatal(err)
	}
	w, err := sys.NewWriter(WriterConfig{Scope: "bench", Stream: "s"})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 100)
	const window = 256
	pending := make([]*WriteFuture, 0, window)
	b.SetBytes(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pending = append(pending, w.WriteEvent("k", data))
		if len(pending) == window {
			for _, f := range pending {
				if err := f.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			pending = pending[:0]
		}
	}
	for _, f := range pending {
		if err := f.Wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkWriterInProcess(b *testing.B) { benchWriter(b, false) }
func BenchmarkWriterLoopback(b *testing.B)  { benchWriter(b, true) }
