package pravega

import (
	"errors"
	"testing"

	"github.com/pravega-go/pravega/internal/kvtable"
)

func TestKeyValueTableOverSegments(t *testing.T) {
	sys := newTestSystem(t)
	if err := sys.CreateScope("kv"); err != nil {
		t.Fatal(err)
	}
	tb, err := sys.NewKeyValueTable("kv", "config")
	if err != nil {
		t.Fatal(err)
	}
	v, err := tb.Put("threshold", []byte("100"), NotExists)
	if err != nil || v != 0 {
		t.Fatalf("Put = %d, %v", v, err)
	}
	// A second handle over the same table sees the entry and can update it
	// conditionally.
	tb2, err := sys.NewKeyValueTable("kv", "config")
	if err != nil {
		t.Fatal(err)
	}
	e, ok, err := tb2.Get("threshold")
	if err != nil || !ok || string(e.Value) != "100" {
		t.Fatalf("second handle Get = %+v, %v, %v", e, ok, err)
	}
	if _, err := tb2.Put("threshold", []byte("200"), e.Version); err != nil {
		t.Fatal(err)
	}
	// The first handle's stale conditional now fails.
	if _, err := tb.Put("threshold", []byte("300"), e.Version); !errors.Is(err, kvtable.ErrVersionMismatch) {
		t.Fatalf("stale conditional: %v", err)
	}
	// Multi-key transaction.
	err = tb.Txn([]TableOp{
		{Key: "alpha", Value: []byte("1"), Expected: NotExists},
		{Key: "beta", Value: []byte("2"), Expected: NotExists},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := tb2.Len()
	if err != nil || n != 3 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	keys, err := tb2.Keys()
	if err != nil || len(keys) != 3 || keys[0] != "alpha" {
		t.Fatalf("Keys = %v, %v", keys, err)
	}
}
