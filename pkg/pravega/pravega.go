// Package pravega is the public client API of this Pravega reproduction: a
// distributed, tiered storage system for data streams (Gracia-Tinedo et
// al., Middleware '23).
//
// A System bundles a running cluster (controller, segment stores, bookie
// ensemble, long-term storage). Applications create scopes and streams
// through the stream-manager methods, append events with EventWriter
// (per-routing-key order, exactly-once), and consume them with coordinated
// ReaderGroups. Streams are elastic: with an auto-scaling policy the system
// splits and merges segments as the ingest load changes.
//
// Quick start:
//
//	sys, _ := pravega.NewInProcess(pravega.SystemConfig{})
//	defer sys.Close()
//	_ = sys.CreateScope("demo")
//	_ = sys.CreateStream(pravega.StreamConfig{Scope: "demo", Name: "events", InitialSegments: 2})
//	w, _ := sys.NewWriter(pravega.WriterConfig{Scope: "demo", Stream: "events"})
//	_ = w.WriteEvent("sensor-1", []byte("hello")).Wait()
//	rg, _ := sys.NewReaderGroup("rg", "demo", "events")
//	r, _ := rg.NewReader("reader-1")
//	ev, _ := r.ReadNextEvent(time.Second)
package pravega

import (
	"context"
	"errors"
	"time"

	"github.com/pravega-go/pravega/internal/client"
	"github.com/pravega-go/pravega/internal/controller"
	"github.com/pravega-go/pravega/internal/hosting"
	"github.com/pravega-go/pravega/internal/keyspace"
	"github.com/pravega-go/pravega/internal/obs"
	"github.com/pravega-go/pravega/internal/sim"
	"github.com/pravega-go/pravega/internal/wire"
)

// ScalingType selects the auto-scaling trigger of a stream policy.
type ScalingType string

// Scaling policy kinds (§2.1 of the paper).
const (
	// ScalingFixed keeps the segment count static.
	ScalingFixed ScalingType = "fixed"
	// ScalingByEventRate scales on events/second per segment.
	ScalingByEventRate ScalingType = "events"
	// ScalingByThroughput scales on bytes/second per segment.
	ScalingByThroughput ScalingType = "bytes"
)

// ScalingPolicy configures stream elasticity (§3.1).
type ScalingPolicy struct {
	// Type selects the trigger metric.
	Type ScalingType
	// TargetRate is the desired per-segment rate (events/s or bytes/s).
	TargetRate float64
	// ScaleFactor is how many successors a hot segment splits into.
	ScaleFactor int
	// MinSegments floors scale-down merges.
	MinSegments int
}

// RetentionType selects the truncation bound of a retention policy.
type RetentionType string

// Retention policy kinds (§2.1).
const (
	// RetentionNone retains the full stream history.
	RetentionNone RetentionType = "none"
	// RetentionBySize truncates once the stream exceeds LimitBytes.
	RetentionBySize RetentionType = "size"
	// RetentionByTime truncates data older than LimitDuration.
	RetentionByTime RetentionType = "time"
)

// RetentionPolicy bounds retained stream history.
type RetentionPolicy struct {
	Type          RetentionType
	LimitBytes    int64
	LimitDuration time.Duration
}

// StreamConfig describes a stream at creation time. Policies can be
// updated later with UpdateStreamPolicies.
type StreamConfig struct {
	Scope           string
	Name            string
	InitialSegments int
	Scaling         ScalingPolicy
	Retention       RetentionPolicy
}

// SystemConfig parameterizes an in-process deployment.
type SystemConfig struct {
	// Cluster sizes the data plane (defaults: 3 stores × 4 containers,
	// 3 bookies, replication 3/3/2 — the paper's Table 1 layout).
	Cluster hosting.ClusterConfig
	// Profile enables the simulated performance substrate (nil = run at
	// memory speed; used by unit tests and examples).
	Profile *sim.Profile
	// PolicyInterval starts the controller's auto-scaling and retention
	// loops at this period (zero = loops disabled).
	PolicyInterval time.Duration
	// ScaleCooldown is the per-stream hysteresis between scaling events.
	ScaleCooldown time.Duration
	// MetricsAddr starts the observability HTTP endpoint on this address
	// (Prometheus text on /metrics, expvar on /debug/vars, pprof under
	// /debug/pprof/, sampled append spans on /debug/traces). Empty
	// disables the endpoint; "127.0.0.1:0" picks an ephemeral port (see
	// System.MetricsAddr).
	MetricsAddr string
	// TraceSampleEvery samples one append span per this many appends into
	// the /debug/traces ring. Zero disables append tracing.
	TraceSampleEvery int
	// ReadAhead tunes the server-side catch-up read path of every segment
	// container (scatter-gather fanout and the readahead prefetcher).
	// Zero-valued fields keep the container defaults.
	ReadAhead ReadAheadConfig
}

// ReadAheadConfig tunes historical (catch-up) reads: the parallel
// scatter-gather fanout across LTS chunks and the sequential-reader
// prefetcher that pipelines ranges ahead of the cursor (§4.2, §5.7). The
// prefetcher's budget is separate from the tail block cache, so catch-up
// scans never evict the tail working set.
type ReadAheadConfig struct {
	// MaxReadFanout bounds parallel per-chunk LTS reads for one historical
	// read (default 8; 1 = sequential single-chunk reads).
	MaxReadFanout int
	// Depth is how many ranges the prefetcher keeps buffered or in flight
	// ahead of a sequential reader (default 4; negative disables
	// readahead).
	Depth int
	// RangeBytes is the prefetch unit (default 1 MiB).
	RangeBytes int64
	// BudgetBytes bounds the prefetcher's buffered bytes (default 16 MiB).
	BudgetBytes int64
}

// System is a handle on a Pravega deployment: either a full in-process
// deployment (NewInProcess) or a remote one reached over the wire protocol
// (Connect). Every client-facing method goes through the transport
// interfaces of internal/client, so writers, readers, reader groups and KV
// tables behave identically over both.
type System struct {
	cluster *hosting.Cluster        // nil for Connect systems
	ctrl    *controller.Controller  // nil for Connect systems
	control client.ControlTransport // control-plane transport
	newData func() client.DataTransport
	remote  *wire.Client // set by Connect; closed with the System
	profile *sim.Profile
	obsSrv  *obs.Server
}

// NewInProcess starts a full in-process deployment.
func NewInProcess(cfg SystemConfig) (*System, error) {
	cfg.Cluster.Profile = cfg.Profile
	if cfg.ReadAhead.MaxReadFanout != 0 {
		cfg.Cluster.Container.MaxReadFanout = cfg.ReadAhead.MaxReadFanout
	}
	if cfg.ReadAhead.Depth != 0 {
		cfg.Cluster.Container.ReadAheadDepth = cfg.ReadAhead.Depth
	}
	if cfg.ReadAhead.RangeBytes != 0 {
		cfg.Cluster.Container.ReadAheadRangeBytes = cfg.ReadAhead.RangeBytes
	}
	if cfg.ReadAhead.BudgetBytes != 0 {
		cfg.Cluster.Container.ReadAheadBudgetBytes = cfg.ReadAhead.BudgetBytes
	}
	cl, err := hosting.NewCluster(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	ctrl, err := controller.New(controller.Config{
		Data:          cl,
		Cluster:       cl.Meta,
		ScaleCooldown: cfg.ScaleCooldown,
	})
	if err != nil {
		cl.Close()
		return nil, err
	}
	if cfg.PolicyInterval > 0 {
		ctrl.StartPolicyLoops(cfg.PolicyInterval)
	}
	s := &System{cluster: cl, ctrl: ctrl, control: ctrl, profile: cfg.Profile}
	s.newData = func() client.DataTransport { return cl.NewClientConn(cfg.Profile) }
	if cfg.TraceSampleEvery > 0 {
		obs.AppendTraces().SetSampleEvery(cfg.TraceSampleEvery)
	}
	if cfg.MetricsAddr != "" {
		srv, err := obs.Serve(cfg.MetricsAddr, obs.Default())
		if err != nil {
			s.Close()
			return nil, err
		}
		s.obsSrv = srv
	}
	return s, nil
}

// ClientConfig tunes a remote System opened with Connect.
type ClientConfig struct {
	// ReconnectMinBackoff/ReconnectMaxBackoff bound the capped exponential
	// backoff used to re-establish lost server connections (defaults 5ms
	// and 1s).
	ReconnectMinBackoff time.Duration
	ReconnectMaxBackoff time.Duration
	// SyncRetryWindow is how long synchronous operations keep retrying
	// across a lost connection before failing with ErrDisconnected
	// (default 15s). Pipelined appends never retry at the transport — the
	// event writer replays them after reconnecting, preserving exactly-once
	// semantics.
	SyncRetryWindow time.Duration
}

// Connect opens a remote System over the wire protocol (one pooled,
// pipelined connection per segment store, served by cmd/pravega-server or
// wire.NewServer). The returned System supports the full client API —
// writers, readers, reader groups, state-synchronized KV tables — with the
// same semantics as an in-process deployment; Cluster and Controller
// return nil for it.
func Connect(addr string, cfg ClientConfig) (*System, error) {
	wc, err := wire.NewClient(addr, wire.ClientConfig{
		MinBackoff:      cfg.ReconnectMinBackoff,
		MaxBackoff:      cfg.ReconnectMaxBackoff,
		SyncRetryWindow: cfg.SyncRetryWindow,
	})
	if err != nil {
		return nil, err
	}
	s := &System{control: wc, remote: wc}
	// All client components share the pooled wire client; their individual
	// Close calls must not tear it down.
	s.newData = func() client.DataTransport { return noCloseData{wc} }
	return s, nil
}

// noCloseData shares one data transport among many components, absorbing
// their Close calls (the System owns the underlying client).
type noCloseData struct {
	client.DataTransport
}

func (noCloseData) Close() error { return nil }

// Close shuts the deployment (or remote connection) down.
func (s *System) Close() {
	if s.obsSrv != nil {
		_ = s.obsSrv.Close()
	}
	if s.ctrl != nil {
		s.ctrl.Close()
	}
	if s.cluster != nil {
		s.cluster.Close()
	}
	if s.remote != nil {
		_ = s.remote.Close()
	}
}

// MetricsAddr returns the bound address of the observability endpoint, or
// "" when SystemConfig.MetricsAddr was empty.
func (s *System) MetricsAddr() string {
	if s.obsSrv == nil {
		return ""
	}
	return s.obsSrv.Addr()
}

// Cluster exposes the underlying deployment (advanced use: failure
// injection in tests, metrics in the benchmark harness). It is nil for a
// System opened with Connect.
func (s *System) Cluster() *hosting.Cluster { return s.cluster }

// Controller exposes the control plane (advanced use). It is nil for a
// System opened with Connect.
func (s *System) Controller() *controller.Controller { return s.ctrl }

// CreateScope registers a stream namespace.
//
// Deprecated: use Streams().CreateScope, which takes a context.
func (s *System) CreateScope(scope string) error {
	return s.Streams().CreateScope(context.Background(), scope)
}

// CreateStream creates a stream.
//
// Deprecated: use Streams().Create, which takes a context.
func (s *System) CreateStream(cfg StreamConfig) error {
	return s.Streams().Create(context.Background(), cfg)
}

func toInternalScaling(p ScalingPolicy) controller.ScalingPolicy {
	return controller.ScalingPolicy{
		Type:        controller.ScalingType(orDefault(string(p.Type), string(ScalingFixed))),
		TargetRate:  p.TargetRate,
		ScaleFactor: p.ScaleFactor,
		MinSegments: p.MinSegments,
	}
}

func orDefault(v, d string) string {
	if v == "" {
		return d
	}
	return v
}

// UpdateStreamPolicies replaces a stream's policies at runtime (§2.1).
//
// Deprecated: use Streams().UpdatePolicies, which takes a context.
func (s *System) UpdateStreamPolicies(scope, stream string, scaling *ScalingPolicy, retention *RetentionPolicy) error {
	return s.Streams().UpdatePolicies(context.Background(), scope, stream, scaling, retention)
}

// SealStream makes a stream read-only.
//
// Deprecated: use Streams().Seal, which takes a context.
func (s *System) SealStream(scope, stream string) error {
	return s.Streams().Seal(context.Background(), scope, stream)
}

// DeleteStream removes a sealed stream.
//
// Deprecated: use Streams().Delete, which takes a context.
func (s *System) DeleteStream(scope, stream string) error {
	return s.Streams().Delete(context.Background(), scope, stream)
}

// SegmentCount reports the stream's current parallelism.
//
// Deprecated: use Streams().SegmentCount, which takes a context.
func (s *System) SegmentCount(scope, stream string) (int, error) {
	return s.Streams().SegmentCount(context.Background(), scope, stream)
}

// ScaleStream manually splits one active segment into factor successors.
//
// Deprecated: use Streams().Scale, which takes a context.
func (s *System) ScaleStream(scope, stream string, segmentNumber int64, factor int) error {
	return s.Streams().Scale(context.Background(), scope, stream, segmentNumber, factor)
}

// TruncateStreamAtTail truncates the whole stream history up to "now".
//
// Deprecated: use Streams().Truncate, which takes a context.
func (s *System) TruncateStreamAtTail(scope, stream string) error {
	return s.Streams().Truncate(context.Background(), scope, stream)
}

// routeTable is the writer's view of a stream's active segments.
type routeTable struct {
	segments []controller.SegmentWithRange
}

// segmentFor maps a hashed key to the owning active segment.
func (rt *routeTable) segmentFor(h float64) (controller.SegmentWithRange, error) {
	for _, s := range rt.segments {
		if s.KeyRange.Contains(h) {
			return s, nil
		}
	}
	return controller.SegmentWithRange{}, errors.New("pravega: no active segment covers key")
}

var _ = keyspace.HashKey // referenced by writer.go
