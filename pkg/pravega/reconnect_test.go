package pravega

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/pravega-go/pravega/internal/hosting"
	"github.com/pravega-go/pravega/internal/wire"
)

// TestWriterSurvivesServerRestart kills the wire server mid-stream and
// restarts it on the same address. The writer must ride out the outage:
// every submitted event is eventually acknowledged, and reading the stream
// back shows each event exactly once — the writer replays unacknowledged
// batches after reconnecting and the server-side writer-attribute dedup
// drops anything that already landed before the crash.
func TestWriterSurvivesServerRestart(t *testing.T) {
	backing, err := NewInProcess(SystemConfig{
		Cluster: hosting.ClusterConfig{Stores: 2, ContainersPerStore: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer backing.Close()
	srv, err := wire.NewServer(backing.Cluster(), backing.Controller(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	sys, err := Connect(addr, ClientConfig{
		ReconnectMinBackoff: time.Millisecond,
		ReconnectMaxBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		_ = srv.Close()
		t.Fatal(err)
	}
	defer sys.Close()
	mustCreate(t, sys, "boom", "s", 2)

	w, err := sys.NewWriter(WriterConfig{Scope: "boom", Stream: "s"})
	if err != nil {
		t.Fatal(err)
	}

	const n = 300
	futures := make([]*WriteFuture, 0, n)
	var srv2 *wire.Server
	for i := 0; i < n; i++ {
		switch i {
		case n / 3:
			// Kill the server mid-stream: in-flight appends fail, the
			// writer parks their batches for replay.
			_ = srv.Close()
		case n/3 + 30:
			// Restart on the same address over the same deployment — the
			// containers keep their writer attributes, so replayed batches
			// that already landed are deduplicated.
			srv2, err = wire.NewServer(backing.Cluster(), backing.Controller(), addr)
			if err != nil {
				t.Fatalf("restarting server: %v", err)
			}
			defer srv2.Close()
		}
		futures = append(futures, w.WriteEvent(fmt.Sprintf("key-%d", i%7), []byte(fmt.Sprintf("event-%05d", i))))
	}
	if srv2 == nil { // n/3+30 not reached (defensive; n is fixed above)
		t.Fatal("server never restarted")
	}
	for i, f := range futures {
		if err := f.Wait(); err != nil {
			t.Fatalf("event %d never acknowledged: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Read the stream back: every acked event exactly once.
	rg, err := sys.NewReaderGroup("rg", "boom", "s")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	seen := make(map[string]int)
	for len(seen) < n {
		ev, err := r.ReadNextEvent(5 * time.Second)
		if err != nil {
			t.Fatalf("read back after %d distinct events: %v", len(seen), err)
		}
		seen[string(ev.Data)]++
	}
	// Drain the quiet tail to catch any duplicate deliveries.
	for {
		ev, err := r.ReadNextEvent(300 * time.Millisecond)
		if errors.Is(err, ErrNoEvent) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seen[string(ev.Data)]++
	}
	if len(seen) != n {
		t.Fatalf("read %d distinct events, wrote %d", len(seen), n)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("event-%05d", i)
		if c := seen[key]; c != 1 {
			t.Errorf("event %d delivered %d times, want exactly once", i, c)
		}
	}
}
