package pravega

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pravega-go/pravega/internal/hosting"
	"github.com/pravega-go/pravega/internal/wire"
)

// newTestSystem returns a System for the API test suite. By default it is an
// in-process deployment; with PRAVEGA_TEST_TRANSPORT=tcp the same suite runs
// against a loopback wire server through pravega.Connect, so every test
// exercises the remote transport end to end.
func newTestSystem(t *testing.T) *System {
	t.Helper()
	backing, err := NewInProcess(SystemConfig{
		Cluster: hosting.ClusterConfig{Stores: 2, ContainersPerStore: 2},
	})
	if err != nil {
		t.Fatalf("NewInProcess: %v", err)
	}
	if os.Getenv("PRAVEGA_TEST_TRANSPORT") != "tcp" {
		t.Cleanup(backing.Close)
		return backing
	}
	srv, err := wire.NewServer(backing.Cluster(), backing.Controller(), "127.0.0.1:0")
	if err != nil {
		backing.Close()
		t.Fatalf("wire.NewServer: %v", err)
	}
	sys, err := Connect(srv.Addr(), ClientConfig{})
	if err != nil {
		_ = srv.Close()
		backing.Close()
		t.Fatalf("Connect: %v", err)
	}
	// Tests that reach below the public API (fault injection, tiering
	// waits) still see the backing deployment.
	sys.cluster = backing.Cluster()
	sys.ctrl = backing.Controller()
	t.Cleanup(func() {
		_ = sys.remote.Close() // drop client connections first
		_ = srv.Close()        // then the server
		backing.Close()        // then the deployment behind it
	})
	return sys
}

func mustCreate(t *testing.T, sys *System, scope, stream string, segments int) {
	t.Helper()
	if err := sys.CreateScope(scope); err != nil {
		t.Fatalf("CreateScope: %v", err)
	}
	if err := sys.CreateStream(StreamConfig{Scope: scope, Name: stream, InitialSegments: segments}); err != nil {
		t.Fatalf("CreateStream: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "demo", "events", 2)

	w, err := sys.NewWriter(WriterConfig{Scope: "demo", Stream: "events"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		w.WriteEvent(fmt.Sprintf("key-%d", i%7), []byte(fmt.Sprintf("event-%03d", i)))
	}
	if err := w.Close(); err != nil {
		t.Fatalf("writer close: %v", err)
	}

	rg, err := sys.NewReaderGroup("rg1", "demo", "events")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := make(map[string]bool, n)
	for len(got) < n {
		ev, err := r.ReadNextEvent(2 * time.Second)
		if err != nil {
			t.Fatalf("ReadNextEvent after %d events: %v", len(got), err)
		}
		s := string(ev.Data)
		if got[s] {
			t.Fatalf("duplicate event %q", s)
		}
		got[s] = true
	}
}

func TestPerKeyOrdering(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "ord", "s", 4)
	w, err := sys.NewWriter(WriterConfig{Scope: "ord", Stream: "s"})
	if err != nil {
		t.Fatal(err)
	}
	const keys, perKey = 5, 40
	for i := 0; i < perKey; i++ {
		for k := 0; k < keys; k++ {
			w.WriteEvent(fmt.Sprintf("k%d", k), []byte(fmt.Sprintf("k%d:%03d", k, i)))
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rg, err := sys.NewReaderGroup("rg-ord", "ord", "s")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	lastSeen := map[string]int{}
	for n := 0; n < keys*perKey; n++ {
		ev, err := r.ReadNextEvent(2 * time.Second)
		if err != nil {
			t.Fatalf("read %d: %v", n, err)
		}
		parts := strings.SplitN(string(ev.Data), ":", 2)
		var seq int
		fmt.Sscanf(parts[1], "%d", &seq)
		if prev, ok := lastSeen[parts[0]]; ok && seq != prev+1 {
			t.Fatalf("key %s: saw %d after %d (order violated)", parts[0], seq, prev)
		}
		lastSeen[parts[0]] = seq
	}
}

func TestManualScalePreservesOrder(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "sc", "s", 1)
	w, err := sys.NewWriter(WriterConfig{Scope: "sc", Stream: "s"})
	if err != nil {
		t.Fatal(err)
	}
	const keys, perKey = 4, 60
	half := perKey / 2
	write := func(from, to int) {
		for i := from; i < to; i++ {
			for k := 0; k < keys; k++ {
				w.WriteEvent(fmt.Sprintf("k%d", k), []byte(fmt.Sprintf("k%d:%03d", k, i)))
			}
		}
	}
	write(0, half)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Scale the single segment (epoch 0, number 0) into 3 successors while
	// the writer keeps going.
	if err := sys.ScaleStream("sc", "s", 0, 3); err != nil {
		t.Fatalf("ScaleStream: %v", err)
	}
	if n, _ := sys.SegmentCount("sc", "s"); n != 3 {
		t.Fatalf("segment count %d, want 3", n)
	}
	write(half, perKey)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rg, err := sys.NewReaderGroup("rg-sc", "sc", "s")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	lastSeen := map[string]int{}
	for n := 0; n < keys*perKey; n++ {
		ev, err := r.ReadNextEvent(3 * time.Second)
		if err != nil {
			t.Fatalf("read %d/%d: %v", n, keys*perKey, err)
		}
		parts := strings.SplitN(string(ev.Data), ":", 2)
		var seq int
		fmt.Sscanf(parts[1], "%d", &seq)
		if prev, ok := lastSeen[parts[0]]; ok && seq != prev+1 {
			t.Fatalf("key %s: saw %d after %d across scaling", parts[0], seq, prev)
		}
		lastSeen[parts[0]] = seq
	}
	for k, last := range lastSeen {
		if last != perKey-1 {
			t.Fatalf("key %s stopped at %d", k, last)
		}
	}
}

func TestReaderGroupSharesSegments(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "share", "s", 4)
	w, err := sys.NewWriter(WriterConfig{Scope: "share", Stream: "s"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		w.WriteEvent(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("e%04d", i)))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rg, err := sys.NewReaderGroup("rg-share", "share", "s")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	r2, err := rg.NewReader("r2")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()

	// Let both readers rebalance until the 4 segments are split fairly
	// between them (readers release surplus segments when the group grows).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := r1.rebalance(); err != nil {
			t.Fatal(err)
		}
		if err := r2.rebalance(); err != nil {
			t.Fatal(err)
		}
		assigned, unassigned, _ := rg.snapshot()
		per := map[string]int{}
		for _, owner := range assigned {
			per[owner]++
		}
		if len(unassigned) == 0 && per["r1"] == 2 && per["r2"] == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("assignment never converged: assigned=%v unassigned=%v", assigned, unassigned)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Both readers together must consume every event exactly once.
	var mu sync.Mutex
	got := map[string]bool{}
	var wg sync.WaitGroup
	for _, rd := range []*Reader{r1, r2} {
		rd := rd
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ev, err := rd.ReadNextEvent(400 * time.Millisecond)
				if err != nil {
					return // quiet tail: this reader's share is drained
				}
				mu.Lock()
				if got[string(ev.Data)] {
					mu.Unlock()
					t.Errorf("duplicate delivery of %q", ev.Data)
					return
				}
				got[string(ev.Data)] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("read %d events, want %d", len(got), n)
	}
}

func TestWriterDedupOnRetry(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "dedup", "s", 1)
	w, err := sys.NewWriter(WriterConfig{Scope: "dedup", Stream: "s", ID: "writer-x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvent("k", []byte("once")).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a reconnecting writer re-sending the same event number.
	w2, err := sys.NewWriter(WriterConfig{Scope: "dedup", Stream: "s", ID: "writer-x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.WriteEvent("k", []byte("once")).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	rg, err := sys.NewReaderGroup("rg-dedup", "dedup", "s")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ReadNextEvent(time.Second); err != nil {
		t.Fatalf("first read: %v", err)
	}
	if ev, err := r.ReadNextEvent(300 * time.Millisecond); err == nil {
		t.Fatalf("expected dedup, got second event %q", ev.Data)
	}
}

func TestAutoScalingSplitsHotStream(t *testing.T) {
	sys, err := NewInProcess(SystemConfig{
		Cluster:        hosting.ClusterConfig{Stores: 2, ContainersPerStore: 2},
		PolicyInterval: 100 * time.Millisecond,
		ScaleCooldown:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.CreateScope("auto"); err != nil {
		t.Fatal(err)
	}
	err = sys.CreateStream(StreamConfig{
		Scope: "auto", Name: "s", InitialSegments: 1,
		Scaling: ScalingPolicy{Type: ScalingByEventRate, TargetRate: 50, ScaleFactor: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := sys.NewWriter(WriterConfig{Scope: "auto", Stream: "s"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	deadline := time.Now().Add(10 * time.Second)
	i := 0
	for time.Now().Before(deadline) {
		w.WriteEvent(fmt.Sprintf("k%d", i%64), []byte("0123456789abcdef"))
		i++
		if i%200 == 0 {
			_ = w.Flush()
			if n, _ := sys.SegmentCount("auto", "s"); n >= 2 {
				return // stream scaled up
			}
		}
		time.Sleep(2 * time.Millisecond) // ~500 e/s, 10x the target
	}
	n, _ := sys.SegmentCount("auto", "s")
	t.Fatalf("stream never scaled up (still %d segment(s) after %d events)", n, i)
}
