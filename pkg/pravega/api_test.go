package pravega

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/pravega-go/pravega/internal/controller"
	"github.com/pravega-go/pravega/internal/segstore"
)

// TestSentinelConversion checks convertErr against every internal/public
// pair: the converted error must match both sentinels with errors.Is and
// keep the original message.
func TestSentinelConversion(t *testing.T) {
	for _, p := range sentinelPairs {
		wrapped := fmt.Errorf("layer context: %w", p.internal)
		got := convertErr(wrapped)
		if !errors.Is(got, p.public) {
			t.Errorf("convertErr(%v) does not match public sentinel %v", p.internal, p.public)
		}
		if !errors.Is(got, p.internal) {
			t.Errorf("convertErr(%v) lost the internal sentinel", p.internal)
		}
		if got.Error() != wrapped.Error() {
			t.Errorf("convertErr changed the message: %q -> %q", wrapped.Error(), got.Error())
		}
	}
	if convertErr(nil) != nil {
		t.Error("convertErr(nil) != nil")
	}
	plain := errors.New("unrelated")
	if convertErr(plain) != plain {
		t.Error("convertErr must pass unknown errors through unchanged")
	}
}

// TestSentinelsEndToEnd drives the public API into each control-plane error
// and checks the public sentinel matches.
func TestSentinelsEndToEnd(t *testing.T) {
	sys := newTestSystem(t)
	if err := sys.CreateScope("s"); err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateScope("s"); !errors.Is(err, ErrScopeExists) {
		t.Errorf("duplicate CreateScope: got %v, want ErrScopeExists", err)
	}
	if err := sys.CreateStream(StreamConfig{Scope: "nope", Name: "x", InitialSegments: 1}); !errors.Is(err, ErrScopeNotFound) {
		t.Errorf("CreateStream in unknown scope: got %v, want ErrScopeNotFound", err)
	}
	if err := sys.CreateStream(StreamConfig{Scope: "s", Name: "st", InitialSegments: 1}); err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateStream(StreamConfig{Scope: "s", Name: "st", InitialSegments: 1}); !errors.Is(err, ErrStreamExists) {
		t.Errorf("duplicate CreateStream: got %v, want ErrStreamExists", err)
	}
	if err := sys.SealStream("s", "missing"); !errors.Is(err, ErrStreamNotFound) {
		t.Errorf("SealStream on unknown stream: got %v, want ErrStreamNotFound", err)
	}
	// The internal sentinel must keep matching too (compatibility).
	err := sys.CreateScope("s")
	if !errors.Is(err, controller.ErrScopeExists) {
		t.Errorf("public error lost internal sentinel: %v", err)
	}
	_ = segstore.ErrSegmentSealed // pairs covered by TestSentinelConversion
}

// TestWriterSealedStreamSentinel seals a stream under a live writer and
// checks pending writes fail with ErrStreamSealed.
func TestWriterSealedStreamSentinel(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "seal", "s", 1)
	w, err := sys.NewWriter(WriterConfig{Scope: "seal", Stream: "s"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.WriteEvent("k", []byte("before")).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := sys.SealStream("seal", "s"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := w.WriteEvent("k", []byte("after")).Wait()
		if err != nil {
			if !errors.Is(err, ErrStreamSealed) {
				t.Fatalf("write to sealed stream: got %v, want ErrStreamSealed", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writes kept succeeding after SealStream")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClosedSentinels(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "cl", "s", 1)
	w, err := sys.NewWriter(WriterConfig{Scope: "cl", Stream: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvent("k", []byte("x")).Wait(); !errors.Is(err, ErrWriterClosed) {
		t.Errorf("WriteEvent after Close: got %v, want ErrWriterClosed", err)
	}
	rg, err := sys.NewReaderGroup("rgc", "cl", "s")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadNextEvent(time.Second); !errors.Is(err, ErrReaderClosed) {
		t.Errorf("ReadNextEvent after Close: got %v, want ErrReaderClosed", err)
	}
	if _, err := r.ReadNextEventCtx(context.Background()); !errors.Is(err, ErrReaderClosed) {
		t.Errorf("ReadNextEventCtx after Close: got %v, want ErrReaderClosed", err)
	}
}

// TestReadNextEventCtxCancel blocks a reader on a quiet stream tail and
// cancels: the call must unblock promptly (the cancellation propagates into
// the server-side long-poll), well before the 20ms poll interval ×
// round-trips would.
func TestReadNextEventCtxCancel(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "ctx", "s", 1)
	rg, err := sys.NewReaderGroup("rgx", "ctx", "s")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := r.ReadNextEventCtx(ctx)
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the reader reach the tail poll
	start := time.Now()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
		if d := time.Since(start); d > 200*time.Millisecond {
			t.Fatalf("cancellation took %v, want prompt unblock", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ReadNextEventCtx did not unblock after cancel")
	}
}

// TestReadNextEventZeroTimeout checks the timeout <= 0 contract: exactly one
// non-blocking pass, returning ErrNoEvent on a quiet tail and an event when
// one is ready.
func TestReadNextEventZeroTimeout(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "zt", "s", 1)
	rg, err := sys.NewReaderGroup("rgz", "zt", "s")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	start := time.Now()
	if _, err := r.ReadNextEvent(0); !errors.Is(err, ErrNoEvent) {
		t.Fatalf("empty stream: got %v, want ErrNoEvent", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("zero-timeout read took %v, want non-blocking", d)
	}

	w, err := sys.NewWriter(WriterConfig{Scope: "zt", Stream: "s"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.WriteEvent("k", []byte("ping")).Wait(); err != nil {
		t.Fatal(err)
	}
	var got Event
	deadline := time.Now().Add(2 * time.Second)
	for {
		got, err = r.ReadNextEvent(0)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrNoEvent) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("zero-timeout read never returned the written event")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if string(got.Data) != "ping" {
		t.Fatalf("got %q", got.Data)
	}
}

// TestWaitCtxCancel checks WaitCtx returns ctx.Err() on cancellation without
// revoking the write: the future still resolves.
func TestWaitCtxCancel(t *testing.T) {
	f := newFuture()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.WaitCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	f.complete(nil)
	if err := f.WaitCtx(context.Background()); err != nil {
		t.Fatalf("future did not resolve after cancel-and-complete: %v", err)
	}
}

// TestFlushCtxCancel checks FlushCtx honours an already-cancelled context
// and that a plain Flush still works.
func TestFlushCtxCancel(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "fl", "s", 1)
	w, err := sys.NewWriter(WriterConfig{Scope: "fl", Stream: "s"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 50; i++ {
		w.WriteEvent("k", []byte("payload"))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := w.FlushCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("FlushCtx(cancelled): got %v, want context.Canceled", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush after cancelled FlushCtx: %v", err)
	}
}

// TestRebalanceRevisionCaching checks a quiet reader group skips the full
// rebalance pass: after the group stabilizes, reads across sync windows bump
// the skip counter instead of re-running reassignment.
func TestRebalanceRevisionCaching(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "rb", "s", 2)
	w, err := sys.NewWriter(WriterConfig{Scope: "rb", Stream: "s"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	rg, err := sys.NewReaderGroup("rgr", "rb", "s")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// First read acquires both segments (full rebalance).
	if err := w.WriteEvent("k", []byte("e0")).Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadNextEvent(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	skippedBefore := mClientRebalancesSkipped.Value()
	fullBefore := mClientRebalances.Value()
	// Quiet group: cross several 100ms sync windows with reads.
	for i := 0; i < 3; i++ {
		time.Sleep(120 * time.Millisecond)
		if err := w.WriteEvent("k", []byte(fmt.Sprintf("e%d", i+1))).Wait(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.ReadNextEvent(2 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if skipped := mClientRebalancesSkipped.Value() - skippedBefore; skipped < 2 {
		t.Errorf("skipped %d rebalances across 3 quiet windows, want >= 2", skipped)
	}
	if full := mClientRebalances.Value() - fullBefore; full > 1 {
		t.Errorf("ran %d full rebalances in a quiet group, want <= 1", full)
	}

	// A membership change must invalidate the cache: a second reader joins
	// and ownership converges (r1 releases its surplus).
	r2, err := rg.NewReader("r2")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		time.Sleep(120 * time.Millisecond)
		_, _ = r.ReadNextEvent(0) // ErrNoEvent expected; drives maybeRebalance
		r.mu.Lock()
		n := len(r.owned)
		r.mu.Unlock()
		if n <= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("r1 still owns %d segments after r2 joined; revision cache not invalidated", n)
		}
	}
}
