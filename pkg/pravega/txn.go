package pravega

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/pravega-go/pravega/internal/client"
	"github.com/pravega-go/pravega/internal/controller"
	"github.com/pravega-go/pravega/internal/keyspace"
	"github.com/pravega-go/pravega/internal/segstore"
)

// TxnStatus is a transaction's lifecycle state as reported by Status.
type TxnStatus string

// Transaction lifecycle states: open → committing → committed, or
// open/aborting → aborted (§3.2).
const (
	TxnOpen       TxnStatus = "open"
	TxnCommitting TxnStatus = "committing"
	TxnCommitted  TxnStatus = "committed"
	TxnAborting   TxnStatus = "aborting"
	TxnAborted    TxnStatus = "aborted"
)

// TxnWriterConfig parameterizes a TransactionalEventWriter.
type TxnWriterConfig struct {
	// Scope and Stream name the target stream.
	Scope  string
	Stream string
	// Lease bounds how long each transaction may stay open before the
	// controller's reaper aborts it (zero selects the controller default,
	// 30s).
	Lease time.Duration
	// ID identifies the writer for exactly-once deduplication within
	// transaction segments; generated when empty.
	ID string
}

// TransactionalEventWriter writes events into stream transactions (§3.2):
// each transaction buffers its events in per-parent-segment shadow
// segments, invisible to readers, until Commit atomically merges every
// shadow into its parent — all of the transaction's events become readable
// at once, or (on Abort or lease expiry) none ever do. Events route by
// routing key exactly like EventWriter's, so committed events preserve
// per-key order among themselves.
type TransactionalEventWriter struct {
	cfg  TxnWriterConfig
	sys  *System
	conn client.DataTransport
}

// NewTransactionalWriter creates a transactional writer for a stream.
func (s *System) NewTransactionalWriter(cfg TxnWriterConfig) (*TransactionalEventWriter, error) {
	if cfg.ID == "" {
		cfg.ID = randomID("txn-writer-")
	}
	// Surface unknown-stream errors at construction, like NewWriter.
	if _, err := s.control.GetActiveSegments(cfg.Scope, cfg.Stream); err != nil {
		return nil, convertErr(err)
	}
	return &TransactionalEventWriter{cfg: cfg, sys: s, conn: s.newData()}, nil
}

// ID returns the writer id used for deduplication.
func (w *TransactionalEventWriter) ID() string { return w.cfg.ID }

// Close releases the writer's transport. Transactions begun by it remain
// open on the controller until committed, aborted, or lease-expired.
func (w *TransactionalEventWriter) Close() error { return w.conn.Close() }

// BeginTxn opens a transaction on the stream. The returned Txn owns one
// shadow segment per active parent segment; its WriteEvent routes by key
// over the parents' ranges, exactly like a plain writer.
func (w *TransactionalEventWriter) BeginTxn(ctx context.Context) (*Txn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type res struct {
		info controller.TxnInfo
		err  error
	}
	done := make(chan res, 1)
	go func() {
		info, err := w.sys.control.BeginTxn(w.cfg.Scope, w.cfg.Stream, w.cfg.Lease)
		done <- res{info, convertErr(err)}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			return nil, r.err
		}
		return &Txn{w: w, id: r.info.ID, route: r.info.Segments, writerID: w.cfg.ID + "-" + r.info.ID}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Txn is one open transaction. WriteEvent may be called from multiple
// goroutines; Commit and Abort are terminal — after either, WriteEvent
// fails with ErrTxnClosed.
type Txn struct {
	w     *TransactionalEventWriter
	id    string
	route []controller.TxnSegment
	// writerID scopes dedup state to this transaction: its shadow segments
	// are born with the transaction, so their writer attributes must not
	// collide with another transaction's from the same writer.
	writerID string

	mu      sync.Mutex
	closed  bool
	seq     int64
	futures []*WriteFuture
}

// ID returns the transaction's identifier.
func (t *Txn) ID() string { return t.id }

// WriteEvent appends an event to the transaction, routed by key to the
// shadow segment of the parent covering that key. The returned future
// resolves when the event is durable in the shadow segment — it is NOT
// readable until Commit. Events sharing a routing key are appended in
// WriteEvent order.
func (t *Txn) WriteEvent(routingKey string, event []byte) *WriteFuture {
	f := newFuture()
	h := keyspace.HashKey(routingKey)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		f.complete(ErrTxnClosed)
		return f
	}
	var shadow string
	for _, ts := range t.route {
		if ts.Parent.KeyRange.Contains(h) {
			shadow = ts.Shadow
			break
		}
	}
	if shadow == "" {
		t.mu.Unlock()
		f.complete(errors.New("pravega: no transaction segment covers key"))
		return f
	}
	t.seq++
	t.futures = append(t.futures, f)
	// Issued under t.mu so appends to one shadow segment are submitted in
	// WriteEvent order; the transport preserves per-segment FIFO from there.
	t.w.conn.AppendAsync(shadow, appendEventFrame(nil, event), t.writerID, t.seq, 1,
		func(r segstore.AppendResult) { f.complete(convertErr(r.Err)) })
	t.mu.Unlock()
	return f
}

// flush waits for every write issued so far, failing on the first error.
func (t *Txn) flush(ctx context.Context) error {
	t.mu.Lock()
	futs := append([]*WriteFuture(nil), t.futures...)
	t.mu.Unlock()
	for _, f := range futs {
		if err := f.WaitCtx(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Commit atomically publishes the transaction: every shadow segment is
// merged into its parent stream segment in one atomic metadata operation
// per parent, so readers observe either all of the transaction's events or
// none. Commit first waits for every WriteEvent to be durable; if any
// write failed, the commit does not proceed (Abort is still possible).
// Cancelling ctx abandons the wait — the controller may still complete the
// commit; check Status.
func (t *Txn) Commit(ctx context.Context) error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	if err := t.flush(ctx); err != nil {
		return err
	}
	return runCtx(ctx, func() error {
		return convertErr(t.w.sys.control.CommitTxn(t.w.cfg.Scope, t.w.cfg.Stream, t.id))
	})
}

// Abort discards the transaction: its shadow segments are deleted and none
// of its events ever become readable.
func (t *Txn) Abort(ctx context.Context) error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	return runCtx(ctx, func() error {
		return convertErr(t.w.sys.control.AbortTxn(t.w.cfg.Scope, t.w.cfg.Stream, t.id))
	})
}

// Status reports the transaction's lifecycle state on the controller.
func (t *Txn) Status(ctx context.Context) (TxnStatus, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	type res struct {
		state controller.TxnState
		err   error
	}
	done := make(chan res, 1)
	go func() {
		state, err := t.w.sys.control.TxnStatus(t.w.cfg.Scope, t.w.cfg.Stream, t.id)
		done <- res{state, convertErr(err)}
	}()
	select {
	case r := <-done:
		return TxnStatus(r.state), r.err
	case <-ctx.Done():
		return "", ctx.Err()
	}
}
