package pravega

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestReaderRaceUnderRebalanceChurn is the -race regression test for the
// reader cursor state: one reader consumes continuously while other readers
// join and leave the group, so ownership of its segments churns mid-read
// (surplus release, reacquire, stale in-flight prefetch results). Every
// event must still be delivered exactly once across all readers.
func TestReaderRaceUnderRebalanceChurn(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "churn", "s", 4)

	w, err := sys.NewWriter(WriterConfig{Scope: "churn", Stream: "s"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	for i := 0; i < n; i++ {
		w.WriteEvent(fmt.Sprintf("key-%d", i%13), []byte(fmt.Sprintf("ev-%04d", i)))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rg, err := sys.NewReaderGroup("rg-churn", "churn", "s")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()

	var mu sync.Mutex
	got := map[string]bool{}
	record := func(data []byte) {
		mu.Lock()
		defer mu.Unlock()
		s := string(data)
		if got[s] {
			t.Errorf("duplicate delivery of %q", s)
		}
		got[s] = true
	}
	count := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(got)
	}

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			ev, err := r1.ReadNextEvent(50 * time.Millisecond)
			if err != nil {
				continue // quiet tail or segment churn; keep polling
			}
			record(ev.Data)
		}
	}()

	// Churn: transient readers join, consume a little, and leave, forcing
	// r1 to release surplus segments and reacquire them afterwards.
	for cycle := 0; cycle < 8 && count() < n; cycle++ {
		r2, err := rg.NewReader(fmt.Sprintf("churn-%d", cycle))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			ev, err := r2.ReadNextEvent(20 * time.Millisecond)
			if err != nil {
				continue
			}
			record(ev.Data)
		}
		if err := r2.Close(); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(20 * time.Second)
	for count() < n && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	<-readerDone
	if got := count(); got != n {
		t.Fatalf("read %d distinct events, want %d", got, n)
	}
}

// TestCatchUpPipeliningDeliversBacklog writes a backlog large enough to
// escalate the reader into 1 MiB catch-up fetches with async prefetch, then
// drains it: every event must arrive exactly once, in per-key order, and at
// least one prefetch must actually have been issued.
func TestCatchUpPipeliningDeliversBacklog(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "catchup", "s", 1)

	w, err := sys.NewWriter(WriterConfig{Scope: "catchup", Stream: "s"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	const eventSize = 1024
	for i := 0; i < n; i++ {
		payload := make([]byte, eventSize)
		copy(payload, fmt.Sprintf("ev-%06d", i))
		w.WriteEvent("k", payload)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	prefetchesBefore := mClientPrefetches.Value()

	rg, err := sys.NewReaderGroup("rg-catchup", "catchup", "s")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for i := 0; i < n; i++ {
		ev, err := r.ReadNextEvent(5 * time.Second)
		if err != nil {
			t.Fatalf("read %d/%d: %v", i, n, err)
		}
		want := fmt.Sprintf("ev-%06d", i)
		if string(ev.Data[:len(want)]) != want {
			t.Fatalf("event %d: got %q, want prefix %q (catch-up reordered or corrupted)", i, ev.Data[:len(want)], want)
		}
		if len(ev.Data) != eventSize {
			t.Fatalf("event %d: length %d, want %d", i, len(ev.Data), eventSize)
		}
	}
	if mClientPrefetches.Value() == prefetchesBefore {
		t.Fatal("catch-up drain never issued an async prefetch")
	}
}
