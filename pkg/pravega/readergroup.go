package pravega

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"github.com/pravega-go/pravega/internal/client"
	"github.com/pravega-go/pravega/internal/segment"
	"github.com/pravega-go/pravega/internal/segstore"
	"github.com/pravega-go/pravega/internal/statesync"
)

// ReaderGroup coordinates a set of readers over a set of streams so that
// every event is processed exactly once by the group (§3.3): at any time
// each active segment is assigned to at most one reader, assignments strive
// for fairness, and a scale-down successor is held back until every
// predecessor has been fully read, preserving per-key order. Coordination
// state is replicated through the state synchronizer over a dedicated
// segment.
type ReaderGroup struct {
	sys     *System
	name    string
	scope   string
	streams []string
	conn    client.DataTransport
	sync    *statesync.Synchronizer

	mu    sync.Mutex
	state rgState
}

// rgSegment is the group's record of one stream segment, keyed by its
// qualified name (unique across streams and epochs).
type rgSegment struct {
	Number      int64    `json:"number"`
	Stream      string   `json:"stream"`
	Qualified   string   `json:"qualified"`
	StartOffset int64    `json:"startOffset"`
	Preds       []string `json:"preds,omitempty"` // qualified names
}

// rgUpdate is one replicated state transition.
type rgUpdate struct {
	Op       string      `json:"op"` // init|addReader|removeReader|acquire|release|complete
	Reader   string      `json:"reader,omitempty"`
	Segment  string      `json:"segment,omitempty"` // qualified name
	Offset   int64       `json:"offset,omitempty"`
	Segments []rgSegment `json:"segments,omitempty"`
}

// rgState is the deterministic replicated state.
type rgState struct {
	readers    map[string]bool
	segInfo    map[string]rgSegment
	unassigned map[string]bool
	pending    map[string]bool
	assigned   map[string]string
	completed  map[string]bool
}

func newRGState() rgState {
	return rgState{
		readers:    make(map[string]bool),
		segInfo:    make(map[string]rgSegment),
		unassigned: make(map[string]bool),
		pending:    make(map[string]bool),
		assigned:   make(map[string]string),
		completed:  make(map[string]bool),
	}
}

// NewReaderGroup creates (or joins) a reader group over one or more streams
// in a scope, starting at each stream's head. Later members joining with
// the same name share the group's state.
func (s *System) NewReaderGroup(name, scope string, streams ...string) (*ReaderGroup, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("pravega: reader group %q needs at least one stream", name)
	}
	rg := &ReaderGroup{
		sys:     s,
		name:    name,
		scope:   scope,
		streams: streams,
		conn:    s.newData(),
		state:   newRGState(),
	}
	// The group's coordination state lives in a dedicated segment.
	stateSeg := fmt.Sprintf("%s/_readergroup-%s/0.#epoch.0", scope, name)
	if err := rg.conn.CreateSegment(stateSeg); err != nil {
		// Another member may have created it already; that's joining.
		if !isExists(err) {
			return nil, err
		}
	}
	backing := &rgBacking{conn: rg.conn, segment: stateSeg}
	rg.sync = statesync.New(backing, rg.apply)

	// Seed the group with every stream's head segments (idempotent: apply
	// ignores segments it already knows).
	var segs []rgSegment
	for _, stream := range streams {
		heads, err := s.control.GetHeadSegments(scope, stream)
		if err != nil {
			return nil, err
		}
		for _, h := range heads {
			segs = append(segs, rgSegment{
				Number:      h.Segment.ID.Number,
				Stream:      stream,
				Qualified:   h.Segment.ID.QualifiedName(),
				StartOffset: h.StartOffset,
			})
		}
	}
	err := rg.sync.Update(func() ([]byte, error) {
		rg.mu.Lock()
		known := len(rg.state.segInfo) > 0
		rg.mu.Unlock()
		if known {
			return nil, nil // someone initialized already
		}
		return json.Marshal(rgUpdate{Op: "init", Segments: segs})
	})
	if err != nil {
		return nil, err
	}
	return rg, nil
}

// isExists reports whether err means "segment already exists" — joining an
// existing group (or table) is not an error.
func isExists(err error) bool {
	return errors.Is(err, segstore.ErrSegmentExists)
}

// rgBacking adapts a data transport to the state synchronizer.
type rgBacking struct {
	conn    client.DataTransport
	segment string
}

func (b *rgBacking) AppendConditional(data []byte, expectedOffset int64) (int64, error) {
	return b.conn.AppendConditional(b.segment, data, expectedOffset)
}

func (b *rgBacking) Read(offset int64, maxBytes int) ([]byte, error) {
	res, err := b.conn.Read(b.segment, offset, maxBytes, 0)
	if err != nil {
		return nil, err
	}
	return res.Data, nil
}

// apply is the deterministic state machine (invoked by the synchronizer in
// total order).
func (rg *ReaderGroup) apply(update []byte) {
	var u rgUpdate
	if err := json.Unmarshal(update, &u); err != nil {
		return // never happens for updates we wrote; ignore garbage
	}
	rg.mu.Lock()
	defer rg.mu.Unlock()
	st := &rg.state
	switch u.Op {
	case "init":
		for _, sgm := range u.Segments {
			if _, ok := st.segInfo[sgm.Qualified]; !ok {
				st.segInfo[sgm.Qualified] = sgm
				st.unassigned[sgm.Qualified] = true
			}
		}
	case "addReader":
		st.readers[u.Reader] = true
	case "removeReader":
		delete(st.readers, u.Reader)
		for seg, r := range st.assigned {
			if r == u.Reader {
				delete(st.assigned, seg)
				st.unassigned[seg] = true
			}
		}
	case "acquire":
		if st.unassigned[u.Segment] {
			delete(st.unassigned, u.Segment)
			st.assigned[u.Segment] = u.Reader
		}
	case "release":
		if st.assigned[u.Segment] == u.Reader {
			delete(st.assigned, u.Segment)
			info := st.segInfo[u.Segment]
			if u.Offset > info.StartOffset {
				info.StartOffset = u.Offset
				st.segInfo[u.Segment] = info
			}
			st.unassigned[u.Segment] = true
		}
	case "complete":
		if st.completed[u.Segment] {
			return
		}
		st.completed[u.Segment] = true
		delete(st.assigned, u.Segment)
		delete(st.unassigned, u.Segment)
		for _, sgm := range u.Segments {
			if _, ok := st.segInfo[sgm.Qualified]; ok {
				continue
			}
			st.segInfo[sgm.Qualified] = sgm
			st.pending[sgm.Qualified] = true
		}
		// Promote pending successors whose predecessors are all done —
		// the scale-down barrier of §3.3.
		for seg := range st.pending {
			info := st.segInfo[seg]
			ready := true
			for _, p := range info.Preds {
				if !st.completed[p] {
					ready = false
					break
				}
			}
			if ready {
				delete(st.pending, seg)
				st.unassigned[seg] = true
			}
		}
	}
}

// snapshot returns copies of the assignment view (under the group lock).
func (rg *ReaderGroup) snapshot() (assigned map[string]string, unassigned []string, readers int) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	assigned = make(map[string]string, len(rg.state.assigned))
	for k, v := range rg.state.assigned {
		assigned[k] = v
	}
	for k := range rg.state.unassigned {
		unassigned = append(unassigned, k)
	}
	return assigned, unassigned, len(rg.state.readers)
}

func (rg *ReaderGroup) segmentRecord(qualified string) (rgSegment, bool) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	s, ok := rg.state.segInfo[qualified]
	return s, ok
}

// Name returns the group's name.
func (rg *ReaderGroup) Name() string { return rg.name }

// Streams returns the streams the group consumes.
func (rg *ReaderGroup) Streams() []string { return append([]string(nil), rg.streams...) }

// UnreadSegments reports how many known segments are not yet completed
// (diagnostics/tests).
func (rg *ReaderGroup) UnreadSegments() int {
	if err := rg.sync.Fetch(); err != nil {
		return -1
	}
	rg.mu.Lock()
	defer rg.mu.Unlock()
	return len(rg.state.segInfo) - len(rg.state.completed)
}

// completeSegment posts a completion with the segment's successors fetched
// from the controller (§3.3's reader-controller interaction).
func (rg *ReaderGroup) completeSegment(rec rgSegment) error {
	succs, err := rg.sys.control.GetSuccessors(rg.scope, rec.Stream, rec.Number)
	if err != nil {
		return err
	}
	segs := make([]rgSegment, 0, len(succs))
	for _, sr := range succs {
		preds := make([]string, 0, len(sr.Predecessors))
		for _, p := range sr.Predecessors {
			pid := segment.ID{Scope: rg.scope, Stream: rec.Stream, Number: p}
			preds = append(preds, pid.QualifiedName())
		}
		segs = append(segs, rgSegment{
			Number:    sr.Segment.ID.Number,
			Stream:    rec.Stream,
			Qualified: sr.Segment.ID.QualifiedName(),
			Preds:     preds,
		})
	}
	return rg.sync.Update(func() ([]byte, error) {
		rg.mu.Lock()
		done := rg.state.completed[rec.Qualified]
		rg.mu.Unlock()
		if done {
			return nil, nil
		}
		return json.Marshal(rgUpdate{Op: "complete", Segment: rec.Qualified, Segments: segs})
	})
}
