package pravega

import "github.com/pravega-go/pravega/internal/obs"

// Process-wide series for the client library (writers and readers in this
// process).
var (
	mClientEventsWritten = obs.Default().Counter("pravega_client_events_written_total",
		"Events submitted through WriteEvent")
	mClientEventsRead = obs.Default().Counter("pravega_client_events_read_total",
		"Events delivered by ReadNextEvent")
	mClientRTTUs = obs.Default().Histogram("pravega_client_write_rtt_us",
		"Append batch round-trip time, microseconds")
	mClientBatchFillPct = obs.Default().Histogram("pravega_client_batch_fill_pct",
		"Batch size at send as a percentage of MaxBatchSize")
	mClientRebalances = obs.Default().Counter("pravega_client_rebalances_total",
		"Reader group rebalance passes executed")
	mClientRebalancesSkipped = obs.Default().Counter("pravega_client_rebalances_skipped_total",
		"Rebalance passes skipped because the group revision was unchanged")
	mClientPrefetches = obs.Default().Counter("pravega_client_prefetches_total",
		"Catch-up fetches issued asynchronously while buffered events drained")
)
