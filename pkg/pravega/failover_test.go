package pravega

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pravega-go/pravega/internal/hosting"
	"github.com/pravega-go/pravega/internal/wire"
)

// newFailoverSystem is newTestSystem with failover-friendly ownership
// timings: a short lease TTL so wedged stores are fenced quickly, and a
// three-store cluster so a crash leaves survivors to re-acquire. Like the
// rest of the suite it runs in process by default and over a loopback wire
// server with PRAVEGA_TEST_TRANSPORT=tcp.
func newFailoverSystem(t *testing.T) *System {
	t.Helper()
	backing, err := NewInProcess(SystemConfig{
		Cluster: hosting.ClusterConfig{
			Stores:             3,
			ContainersPerStore: 2,
			Ownership: hosting.OwnershipConfig{
				LeaseTTL:          500 * time.Millisecond,
				RebalanceInterval: 20 * time.Millisecond,
			},
		},
	})
	if err != nil {
		t.Fatalf("NewInProcess: %v", err)
	}
	if os.Getenv("PRAVEGA_TEST_TRANSPORT") != "tcp" {
		t.Cleanup(backing.Close)
		return backing
	}
	srv, err := wire.NewServer(backing.Cluster(), backing.Controller(), "127.0.0.1:0")
	if err != nil {
		backing.Close()
		t.Fatalf("wire.NewServer: %v", err)
	}
	sys, err := Connect(srv.Addr(), ClientConfig{SyncRetryWindow: 30 * time.Second})
	if err != nil {
		_ = srv.Close()
		backing.Close()
		t.Fatalf("Connect: %v", err)
	}
	sys.cluster = backing.Cluster()
	sys.ctrl = backing.Controller()
	t.Cleanup(func() {
		_ = sys.remote.Close()
		_ = srv.Close()
		backing.Close()
	})
	return sys
}

// failoverOracle checks exactly-once delivery with per-key ordering across
// concurrent readers.
type failoverOracle struct {
	mu        sync.Mutex
	delivered map[string]int
	lastSeq   map[string]int
	violation string
}

func (o *failoverOracle) observe(event string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.delivered[event]++
	if o.delivered[event] > 1 && o.violation == "" {
		o.violation = fmt.Sprintf("event %q delivered %d times", event, o.delivered[event])
		return
	}
	key, seqStr, ok := strings.Cut(event, ":")
	if !ok {
		o.violation = fmt.Sprintf("malformed event %q", event)
		return
	}
	seq, _ := strconv.Atoi(seqStr)
	if last, seen := o.lastSeq[key]; seen && seq <= last && o.violation == "" {
		o.violation = fmt.Sprintf("key %s: seq %d after %d (reorder)", key, seq, last)
		return
	}
	o.lastSeq[key] = seq
}

func (o *failoverOracle) count() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.delivered)
}

func (o *failoverOracle) failure() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.violation
}

// runFailoverWorkload writes keys*perKey events while disrupt runs midway,
// with a reader tailing the stream the whole time, and asserts the
// exactly-once oracle: every acked event delivered once, in per-key order.
func runFailoverWorkload(t *testing.T, sys *System, scope string, disrupt func()) {
	t.Helper()
	const keys, perKey = 4, 30
	mustCreate(t, sys, scope, "s", 4)

	oracle := &failoverOracle{delivered: make(map[string]int), lastSeq: make(map[string]int)}
	readCtx, readStop := context.WithCancel(context.Background())
	defer readStop()
	rg, err := sys.NewReaderGroup("rg-"+scope, scope, "s")
	if err != nil {
		t.Fatalf("NewReaderGroup: %v", err)
	}
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		r, err := rg.NewReader("r1")
		if err != nil {
			return
		}
		defer r.Close()
		for readCtx.Err() == nil {
			ev, err := r.ReadNextEvent(500 * time.Millisecond)
			if errors.Is(err, ErrNoEvent) {
				continue
			}
			if err != nil {
				// Transient failover error: back off and keep tailing.
				time.Sleep(10 * time.Millisecond)
				continue
			}
			oracle.observe(string(ev.Data))
		}
	}()

	w, err := sys.NewWriter(WriterConfig{Scope: scope, Stream: "s"})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	write := func(from, to int) []*WriteFuture {
		var futs []*WriteFuture
		for seq := from; seq < to; seq++ {
			for k := 0; k < keys; k++ {
				futs = append(futs, w.WriteEvent(fmt.Sprintf("k%d", k),
					[]byte(fmt.Sprintf("k%d:%04d", k, seq))))
			}
		}
		return futs
	}
	// First half acked before the disruption, so the crash has real state to
	// fence and replay.
	for i, f := range write(0, perKey/2) {
		if err := f.WaitCtx(ctx); err != nil {
			t.Fatalf("pre-disruption event %d not acked: %v", i, err)
		}
	}

	disrupt()

	// Second half rides through the failover: parked batches must replay
	// exactly once against the new owners.
	for i, f := range write(perKey/2, perKey) {
		if err := f.WaitCtx(ctx); err != nil {
			t.Fatalf("post-disruption event %d not acked: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("writer close: %v", err)
	}

	total := keys * perKey
	deadline := time.Now().Add(60 * time.Second)
	for oracle.count() < total {
		if v := oracle.failure(); v != "" {
			t.Fatal(v)
		}
		if time.Now().After(deadline) {
			t.Fatalf("reader stalled at %d/%d events", oracle.count(), total)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Grace window to catch late duplicates.
	time.Sleep(200 * time.Millisecond)
	readStop()
	readWG.Wait()
	if v := oracle.failure(); v != "" {
		t.Fatal(v)
	}
	if oracle.count() != total {
		t.Fatalf("delivered %d events, want %d", oracle.count(), total)
	}
}

// TestWriterReaderSurviveStoreFailover crashes one of three stores while a
// writer/reader pair is in flight: survivors fence and re-acquire its
// containers and the exactly-once oracle stays green. With
// PRAVEGA_TEST_TRANSPORT=tcp the same scenario additionally exercises the
// wire client's wrong-host retry and placement refresh.
func TestWriterReaderSurviveStoreFailover(t *testing.T) {
	sys := newFailoverSystem(t)
	runFailoverWorkload(t, sys, "failover", func() {
		if err := sys.cluster.CrashStore(0); err != nil {
			t.Fatalf("CrashStore: %v", err)
		}
	})
	if err := sys.cluster.AwaitConverged(10 * time.Second); err != nil {
		t.Fatalf("placement never reconverged: %v", err)
	}
}

// TestWriterReaderSurviveRebalance grows the cluster mid-traffic: the
// rebalancer drains and hands containers to the new store under load, and
// nothing is lost or duplicated.
func TestWriterReaderSurviveRebalance(t *testing.T) {
	sys := newFailoverSystem(t)
	runFailoverWorkload(t, sys, "rebalance", func() {
		if _, err := sys.cluster.AddStore(); err != nil {
			t.Fatalf("AddStore: %v", err)
		}
	})
}
