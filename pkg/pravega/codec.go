package pravega

import (
	"encoding/binary"
	"errors"
)

// Events are stored in segments as length-prefixed frames: the segment
// store itself does not track event boundaries (§2.1); the client codec
// defines them.

// appendEventFrame serializes one event into dst.
func appendEventFrame(dst, event []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(event)))
	dst = append(dst, hdr[:]...)
	return append(dst, event...)
}

// eventFrameSize returns the on-segment size of one event.
func eventFrameSize(event []byte) int { return 4 + len(event) }

// decodeEventFrame extracts the first complete event from buf, returning
// the event, the remaining buffer, and whether a complete frame was
// present.
func decodeEventFrame(buf []byte) (event, rest []byte, ok bool, err error) {
	if len(buf) < 4 {
		return nil, buf, false, nil
	}
	n := binary.BigEndian.Uint32(buf)
	if n > 64<<20 {
		return nil, buf, false, errors.New("pravega: corrupt event frame (length too large)")
	}
	if len(buf) < int(4+n) {
		return nil, buf, false, nil
	}
	return buf[4 : 4+n], buf[4+n:], true, nil
}
