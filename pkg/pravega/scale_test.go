package pravega

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/pravega-go/pravega/internal/controller"
	"github.com/pravega-go/pravega/internal/keyspace"
)

// TestScaleDownBarrier verifies §3.3's ordering barrier: after two segments
// merge, the successor is not readable until *both* predecessors have been
// fully consumed, so per-key order holds across a scale-down.
func TestScaleDownBarrier(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "down", "s", 2)
	w, err := sys.NewWriter(WriterConfig{Scope: "down", Stream: "s"})
	if err != nil {
		t.Fatal(err)
	}
	const keys, perKey = 6, 30
	half := perKey / 2
	write := func(from, to int) {
		for i := from; i < to; i++ {
			for k := 0; k < keys; k++ {
				w.WriteEvent(fmt.Sprintf("k%d", k), []byte(fmt.Sprintf("k%d:%03d", k, i)))
			}
		}
	}
	write(0, half)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// Merge the two segments into one (scale-down).
	segs, err := sys.Controller().GetActiveSegments("down", "s")
	if err != nil || len(segs) != 2 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	merged, err := keyspace.Merge(segs[0].KeyRange, segs[1].KeyRange)
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Controller().Scale("down", "s",
		[]int64{segs[0].ID.Number, segs[1].ID.Number}, []keyspace.Range{merged})
	if err != nil {
		t.Fatalf("merge scale: %v", err)
	}
	write(half, perKey)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rg, err := sys.NewReaderGroup("rg-down", "down", "s")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	lastSeen := map[string]int{}
	for n := 0; n < keys*perKey; n++ {
		ev, err := r.ReadNextEvent(3 * time.Second)
		if err != nil {
			t.Fatalf("read %d/%d: %v", n, keys*perKey, err)
		}
		parts := strings.SplitN(string(ev.Data), ":", 2)
		var seq int
		fmt.Sscanf(parts[1], "%d", &seq)
		if prev, ok := lastSeen[parts[0]]; ok && seq != prev+1 {
			t.Fatalf("key %s: %d after %d — merge barrier violated", parts[0], seq, prev)
		}
		lastSeen[parts[0]] = seq
	}
}

// TestHistoricalReadAfterTiering verifies that a late reader group replays
// data that has left the WAL: everything is tiered to LTS and the WAL
// truncated before the reader starts (§4.3, §5.7).
func TestHistoricalReadAfterTiering(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "hist", "s", 2)
	w, err := sys.NewWriter(WriterConfig{Scope: "hist", Stream: "s"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		w.WriteEvent(fmt.Sprintf("k%d", i%13), []byte(fmt.Sprintf("hist-%04d-%032d", i, i)))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Cluster().WaitForTiering(10 * time.Second); err != nil {
		t.Fatalf("tiering did not finish: %v", err)
	}
	// Force every container to flush and checkpoint so the WAL can shrink.
	for _, st := range sys.Cluster().Stores() {
		for _, id := range st.HostedContainers() {
			c, err := st.ContainerByID(id)
			if err != nil {
				continue
			}
			if err := c.FlushAll(); err != nil {
				t.Fatal(err)
			}
			if err := c.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	rg, err := sys.NewReaderGroup("rg-hist", "hist", "s")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := map[string]bool{}
	for len(got) < n {
		ev, err := r.ReadNextEvent(3 * time.Second)
		if err != nil {
			t.Fatalf("historical read stalled at %d/%d: %v", len(got), n, err)
		}
		got[string(ev.Data)] = true
	}
}

// TestWriterLargeEvents pushes events far larger than a cache block and a
// frame through the full path.
func TestWriterLargeEvents(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "big", "s", 1)
	w, err := sys.NewWriter(WriterConfig{Scope: "big", Stream: "s"})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 256<<10) // 256 KiB
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < 4; i++ {
		if err := w.WriteEvent("k", payload).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rg, err := sys.NewReaderGroup("rg-big", "big", "s")
	if err != nil {
		t.Fatal(err)
	}
	r, err := rg.NewReader("r1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 4; i++ {
		ev, err := r.ReadNextEvent(5 * time.Second)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if len(ev.Data) != len(payload) {
			t.Fatalf("event %d: %d bytes, want %d", i, len(ev.Data), len(payload))
		}
		for j := 0; j < len(payload); j += 1013 {
			if ev.Data[j] != payload[j] {
				t.Fatalf("event %d corrupt at byte %d", i, j)
			}
		}
	}
}

// TestSegmentCountAfterRepeatedScaling walks several scale-ups and checks
// the controller's active-set bookkeeping.
func TestSegmentCountAfterRepeatedScaling(t *testing.T) {
	sys := newTestSystem(t)
	mustCreate(t, sys, "multi", "s", 1)
	want := 1
	for round := 0; round < 3; round++ {
		segs, err := sys.Controller().GetActiveSegments("multi", "s")
		if err != nil {
			t.Fatal(err)
		}
		target := segs[0]
		if err := sys.ScaleStream("multi", "s", target.ID.Number, 2); err != nil {
			t.Fatal(err)
		}
		want++
		if n, _ := sys.SegmentCount("multi", "s"); n != want {
			t.Fatalf("round %d: %d segments, want %d", round, n, want)
		}
	}
	_ = controller.SegmentWithRange{}
}
