package pravega

import (
	"context"
	"fmt"
	"sync/atomic"

	"github.com/pravega-go/pravega/internal/client"
	"github.com/pravega-go/pravega/internal/kvtable"
)

// KeyValueTable is a durable, replicated key-value table backed by a
// Pravega segment, with per-key versions, conditional updates and multi-key
// transactions — the same facility Pravega uses internally for stream and
// chunk metadata (§2.2, §4.3). Multiple clients may open the same table;
// optimistic concurrency resolves conflicts.
type KeyValueTable struct {
	table *kvtable.Table
}

// Version sentinels re-exported for conditional operations.
const (
	// AnyVersion makes an operation unconditional.
	AnyVersion = kvtable.AnyVersion
	// NotExists requires the key to be absent.
	NotExists = kvtable.NotExists
)

// TableEntry is one key's state.
type TableEntry = kvtable.Entry

// TableOp is one operation of a table transaction.
type TableOp = kvtable.TxnOp

// NewKeyValueTable opens (creating if needed) the named table in a scope.
func (s *System) NewKeyValueTable(scope, name string) (*KeyValueTable, error) {
	seg := fmt.Sprintf("%s/_kvtable-%s/0.#epoch.0", scope, name)
	conn := s.newData()
	if err := conn.CreateSegment(seg); err != nil && !isExists(err) {
		return nil, err
	}
	backing := &kvBacking{conn: conn, segment: seg}
	// The instance id only needs to differ between concurrently open
	// handles; the connection pointer value's low bits suffice.
	return &KeyValueTable{table: kvtable.New(backing, instanceID())}, nil
}

var kvInstanceCounter atomic.Int64

func instanceID() int64 { return kvInstanceCounter.Add(1) }

type kvBacking struct {
	conn    client.DataTransport
	segment string
}

func (b *kvBacking) AppendConditional(data []byte, expectedOffset int64) (int64, error) {
	return b.conn.AppendConditional(b.segment, data, expectedOffset)
}

func (b *kvBacking) Read(offset int64, maxBytes int) ([]byte, error) {
	res, err := b.conn.Read(b.segment, offset, maxBytes, 0)
	if err != nil {
		return nil, err
	}
	return res.Data, nil
}

// Get returns the key's entry, or ok=false when absent.
func (t *KeyValueTable) Get(key string) (TableEntry, bool, error) { return t.table.Get(key) }

// GetCtx is Get honoring ctx cancellation (see DESIGN.md §"Context
// convention"): cancelling abandons the wait; the read itself is side-effect
// free.
func (t *KeyValueTable) GetCtx(ctx context.Context, key string) (TableEntry, bool, error) {
	type hit struct {
		e  TableEntry
		ok bool
	}
	h, err := runCtxVal(ctx, func() (hit, error) {
		e, ok, err := t.table.Get(key)
		return hit{e, ok}, err
	})
	return h.e, h.ok, err
}

// Put writes key=value conditionally on expected (AnyVersion, NotExists or
// an exact version) and returns the new version.
func (t *KeyValueTable) Put(key string, value []byte, expected int64) (int64, error) {
	return t.table.Put(key, value, expected)
}

// PutCtx is Put honoring ctx cancellation. Cancelling abandons the wait; the
// conditional write may still land — re-read to learn the outcome.
func (t *KeyValueTable) PutCtx(ctx context.Context, key string, value []byte, expected int64) (int64, error) {
	return runCtxVal(ctx, func() (int64, error) { return t.table.Put(key, value, expected) })
}

// Delete removes the key conditionally.
func (t *KeyValueTable) Delete(key string, expected int64) error {
	return t.table.Delete(key, expected)
}

// DeleteCtx is Delete honoring ctx cancellation; like PutCtx, a cancelled
// call may still have applied.
func (t *KeyValueTable) DeleteCtx(ctx context.Context, key string, expected int64) error {
	return runCtx(ctx, func() error { return t.table.Delete(key, expected) })
}

// Txn applies all operations atomically, or none (§4.3: "transactions to
// update multiple keys at once").
func (t *KeyValueTable) Txn(ops []TableOp) error { return t.table.Txn(ops) }

// TxnCtx is Txn honoring ctx cancellation; the transaction still applies
// atomically or not at all if the wait is abandoned.
func (t *KeyValueTable) TxnCtx(ctx context.Context, ops []TableOp) error {
	return runCtx(ctx, func() error { return t.table.Txn(ops) })
}

// Keys lists the table's keys, sorted.
func (t *KeyValueTable) Keys() ([]string, error) { return t.table.Keys() }

// KeysCtx is Keys honoring ctx cancellation.
func (t *KeyValueTable) KeysCtx(ctx context.Context) ([]string, error) {
	return runCtxVal(ctx, func() ([]string, error) { return t.table.Keys() })
}

// Len returns the number of keys.
func (t *KeyValueTable) Len() (int, error) { return t.table.Len() }

// LenCtx is Len honoring ctx cancellation.
func (t *KeyValueTable) LenCtx(ctx context.Context) (int, error) {
	return runCtxVal(ctx, func() (int, error) { return t.table.Len() })
}
