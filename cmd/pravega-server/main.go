// Command pravega-server runs a Pravega node: controller, segment stores,
// bookie ensemble and long-term storage, serving the wire protocol on a
// TCP port. The long-term storage tier can be an in-memory store or a real
// directory (NFS-style, as the paper's EFS deployment).
//
// Usage:
//
//	pravega-server -listen :9090 -lts-dir /mnt/lts -stores 3 -containers 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/pravega-go/pravega/internal/hosting"
	"github.com/pravega-go/pravega/internal/lts"
	"github.com/pravega-go/pravega/internal/wire"
	"github.com/pravega-go/pravega/pkg/pravega"
)

func main() {
	var (
		listen     = flag.String("listen", ":9090", "address to serve the wire protocol on")
		stores     = flag.Int("stores", 3, "segment store instances")
		containers = flag.Int("containers", 4, "segment containers per store")
		bookies    = flag.Int("bookies", 3, "bookie instances")
		ltsDir     = flag.String("lts-dir", "", "directory for long-term storage (empty = in-memory)")
		policyMS   = flag.Int("policy-interval-ms", 2000, "auto-scaling/retention evaluation period")
		metrics    = flag.String("metrics", "", "address for the observability HTTP endpoint (/metrics, /debug/vars, /debug/pprof/, /debug/traces); empty = disabled")
		traceEvery = flag.Int("trace-sample", 0, "sample one append span per N appends into /debug/traces (0 = off)")
	)
	flag.Parse()

	cfg := pravega.SystemConfig{
		Cluster: hosting.ClusterConfig{
			Stores:             *stores,
			ContainersPerStore: *containers,
			Bookies:            *bookies,
		},
		PolicyInterval:   time.Duration(*policyMS) * time.Millisecond,
		MetricsAddr:      *metrics,
		TraceSampleEvery: *traceEvery,
	}
	if *ltsDir != "" {
		fsStore, err := lts.NewFS(*ltsDir)
		if err != nil {
			log.Fatalf("pravega-server: opening LTS directory: %v", err)
		}
		cfg.Cluster.LTS = fsStore
	}
	sys, err := pravega.NewInProcess(cfg)
	if err != nil {
		log.Fatalf("pravega-server: starting system: %v", err)
	}
	defer sys.Close()

	srv, err := wire.NewServer(sys.Cluster(), sys.Controller(), *listen)
	if err != nil {
		log.Fatalf("pravega-server: listening: %v", err)
	}
	defer srv.Close()
	fmt.Printf("pravega-server: serving on %s (%d stores × %d containers, %d bookies)\n",
		srv.Addr(), *stores, *containers, *bookies)
	if addr := sys.MetricsAddr(); addr != "" {
		fmt.Printf("pravega-server: metrics on http://%s/metrics\n", addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("pravega-server: shutting down")
}
