// Command pravega-server runs a Pravega node: controller, segment stores,
// bookie ensemble and long-term storage, serving the wire protocol on a
// TCP port. The long-term storage tier can be an in-memory store or a real
// directory (NFS-style, as the paper's EFS deployment).
//
// Usage:
//
//	pravega-server -listen :9090 -lts-dir /mnt/lts -stores 3 -containers 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/pravega-go/pravega/internal/hosting"
	"github.com/pravega-go/pravega/internal/lts"
	"github.com/pravega-go/pravega/internal/wire"
	"github.com/pravega-go/pravega/pkg/pravega"
)

func main() {
	var (
		listen     = flag.String("listen", ":9090", "address to serve the wire protocol on")
		stores     = flag.Int("stores", 3, "segment store instances")
		containers = flag.Int("containers", 4, "segment containers per store")
		bookies    = flag.Int("bookies", 3, "bookie instances")
		ltsDir     = flag.String("lts-dir", "", "directory for long-term storage (empty = in-memory)")
		policyMS   = flag.Int("policy-interval-ms", 2000, "auto-scaling/retention evaluation period")
		metrics    = flag.String("metrics", "", "address for the observability HTTP endpoint (/metrics, /debug/vars, /debug/pprof/, /debug/traces); empty = disabled")
		traceEvery = flag.Int("trace-sample", 0, "sample one append span per N appends into /debug/traces (0 = off)")
		drainTO    = flag.Duration("drain-timeout", 10*time.Second, "bound on the graceful drain (flush WALs, tier to LTS) after SIGINT/SIGTERM")
	)
	flag.Parse()

	cfg := pravega.SystemConfig{
		Cluster: hosting.ClusterConfig{
			Stores:             *stores,
			ContainersPerStore: *containers,
			Bookies:            *bookies,
		},
		PolicyInterval:   time.Duration(*policyMS) * time.Millisecond,
		MetricsAddr:      *metrics,
		TraceSampleEvery: *traceEvery,
	}
	if *ltsDir != "" {
		fsStore, err := lts.NewFS(*ltsDir)
		if err != nil {
			log.Fatalf("pravega-server: opening LTS directory: %v", err)
		}
		cfg.Cluster.LTS = fsStore
	}
	sys, err := pravega.NewInProcess(cfg)
	if err != nil {
		log.Fatalf("pravega-server: starting system: %v", err)
	}
	defer sys.Close()

	srv, err := wire.NewServer(sys.Cluster(), sys.Controller(), *listen)
	if err != nil {
		log.Fatalf("pravega-server: listening: %v", err)
	}
	defer srv.Close()
	fmt.Printf("pravega-server: serving on %s (%d stores × %d containers, %d bookies)\n",
		srv.Addr(), *stores, *containers, *bookies)
	if addr := sys.MetricsAddr(); addr != "" {
		fmt.Printf("pravega-server: metrics on http://%s/metrics\n", addr)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("pravega-server: draining (up to %v; signal again to exit immediately)\n", *drainTO)

	// A second signal means the operator wants out now, drain or no drain.
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "pravega-server: second signal, exiting immediately")
		os.Exit(1)
	}()

	// Stop accepting wire traffic, then drain what the stores already hold:
	// flush every open WAL segment and let the tiering engine finish moving
	// flushed data to LTS, bounded by -drain-timeout.
	if err := srv.Close(); err != nil {
		log.Printf("pravega-server: closing listener: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		if err := sys.Cluster().FlushAll(); err != nil {
			done <- err
			return
		}
		done <- sys.Cluster().WaitForTiering(*drainTO)
	}()
	select {
	case err := <-done:
		if err != nil {
			log.Printf("pravega-server: drain incomplete: %v", err)
		} else {
			fmt.Println("pravega-server: drained, shutting down")
		}
	case <-time.After(*drainTO):
		log.Printf("pravega-server: drain timed out after %v, shutting down", *drainTO)
	}
}
