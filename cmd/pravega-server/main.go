// Command pravega-server runs a Pravega node, serving the wire protocol on
// a TCP port. Three roles compose a deployment:
//
//   - all (default): the classic single-process node — controller, segment
//     stores, bookie ensemble and long-term storage behind one listener.
//   - coord: the coordination process — the cluster's coordination store
//     (sessions, ephemerals, watches served over the wire), the WAL bookie
//     ensemble, and the controller, which reaches segment stores remotely.
//   - store: one segment store that claims containers through the remote
//     coordination store and journals its WAL to the coord process's
//     bookies. Killing -9 a store process loses no acknowledged data:
//     survivors fence its ledgers and replay.
//
// Multi-process quick start (three stores on localhost):
//
//	pravega-server -role coord -listen :9090 -stores 3 -containers 4 &
//	pravega-server -role store -store-id store-0 -listen :9101 \
//	    -coord-addr localhost:9090 -lts-dir /tmp/pravega-lts &
//	pravega-server -role store -store-id store-1 -listen :9102 \
//	    -coord-addr localhost:9090 -lts-dir /tmp/pravega-lts &
//	pravega-server -role store -store-id store-2 -listen :9103 \
//	    -coord-addr localhost:9090 -lts-dir /tmp/pravega-lts &
//
// Store processes share the LTS directory (the paper's EFS model), so any
// store can serve any container's tiered data after a failover.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/pravega-go/pravega/internal/bookkeeper"
	"github.com/pravega-go/pravega/internal/cluster"
	"github.com/pravega-go/pravega/internal/controller"
	"github.com/pravega-go/pravega/internal/hosting"
	"github.com/pravega-go/pravega/internal/lts"
	"github.com/pravega-go/pravega/internal/obs"
	"github.com/pravega-go/pravega/internal/segstore"
	"github.com/pravega-go/pravega/internal/wire"
	"github.com/pravega-go/pravega/pkg/pravega"
)

func main() {
	var (
		role       = flag.String("role", "all", "process role: all, coord, or store")
		listen     = flag.String("listen", ":9090", "address to serve the wire protocol on")
		advertise  = flag.String("advertise", "", "address other processes dial this one on (default: the bound listen address)")
		storeID    = flag.String("store-id", "", "store role: unique segment store id (required)")
		coordAddr  = flag.String("coord-addr", "", "store role: address of the coord process (required)")
		stores     = flag.Int("stores", 3, "segment store instances (all: in-process count; coord: expected store processes, sizes the container key space)")
		containers = flag.Int("containers", 4, "segment containers per store")
		bookies    = flag.Int("bookies", 3, "bookie instances")
		ltsDir     = flag.String("lts-dir", "", "directory for long-term storage (empty = in-memory; store role: required, shared across stores)")
		leaseTTL   = flag.Duration("lease-ttl", 3*time.Second, "store role: container claim lease TTL")
		rebalance  = flag.Duration("rebalance-interval", 50*time.Millisecond, "store role: ownership manager tick")
		policyMS   = flag.Int("policy-interval-ms", 2000, "auto-scaling/retention evaluation period (all/coord)")
		metrics    = flag.String("metrics", "", "address for the observability HTTP endpoint (/metrics, /debug/vars, /debug/pprof/, /debug/traces); empty = disabled")
		traceEvery = flag.Int("trace-sample", 0, "sample one append span per N appends into /debug/traces (0 = off)")
		drainTO    = flag.Duration("drain-timeout", 10*time.Second, "bound on the graceful drain after SIGINT/SIGTERM")
	)
	flag.Parse()

	switch *role {
	case "all":
		runAll(*listen, *stores, *containers, *bookies, *ltsDir, *policyMS, *metrics, *traceEvery, *drainTO)
	case "coord":
		runCoord(*listen, *stores, *containers, *bookies, *policyMS, *metrics, *drainTO)
	case "store":
		runStore(*listen, *advertise, *storeID, *coordAddr, *ltsDir, *leaseTTL, *rebalance, *metrics, *drainTO)
	default:
		log.Fatalf("pravega-server: unknown -role %q (want all, coord or store)", *role)
	}
}

// serveMetrics starts the observability endpoint when addr is non-empty.
func serveMetrics(addr string) *obs.Server {
	if addr == "" {
		return nil
	}
	srv, err := obs.Serve(addr, obs.Default())
	if err != nil {
		log.Fatalf("pravega-server: metrics endpoint: %v", err)
	}
	fmt.Printf("pravega-server: metrics on http://%s/metrics\n", srv.Addr())
	return srv
}

// awaitSignal blocks until SIGINT/SIGTERM, then arms a second-signal
// immediate exit and returns.
func awaitSignal() {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "pravega-server: second signal, exiting immediately")
		os.Exit(1)
	}()
}

// runAll is the classic single-process deployment.
func runAll(listen string, stores, containers, bookies int, ltsDir string, policyMS int, metrics string, traceEvery int, drainTO time.Duration) {
	cfg := pravega.SystemConfig{
		Cluster: hosting.ClusterConfig{
			Stores:             stores,
			ContainersPerStore: containers,
			Bookies:            bookies,
		},
		PolicyInterval:   time.Duration(policyMS) * time.Millisecond,
		MetricsAddr:      metrics,
		TraceSampleEvery: traceEvery,
	}
	if ltsDir != "" {
		fsStore, err := lts.NewFS(ltsDir)
		if err != nil {
			log.Fatalf("pravega-server: opening LTS directory: %v", err)
		}
		cfg.Cluster.LTS = fsStore
	}
	sys, err := pravega.NewInProcess(cfg)
	if err != nil {
		log.Fatalf("pravega-server: starting system: %v", err)
	}
	defer sys.Close()

	srv, err := wire.NewServer(sys.Cluster(), sys.Controller(), listen)
	if err != nil {
		log.Fatalf("pravega-server: listening: %v", err)
	}
	defer srv.Close()
	fmt.Printf("pravega-server: serving on %s (%d stores × %d containers, %d bookies)\n",
		srv.Addr(), stores, containers, bookies)
	if addr := sys.MetricsAddr(); addr != "" {
		fmt.Printf("pravega-server: metrics on http://%s/metrics\n", addr)
	}

	awaitSignal()
	fmt.Printf("pravega-server: draining (up to %v; signal again to exit immediately)\n", drainTO)

	// Stop accepting wire traffic, then drain what the stores already hold:
	// flush every open WAL segment and let the tiering engine finish moving
	// flushed data to LTS, bounded by -drain-timeout.
	if err := srv.Close(); err != nil {
		log.Printf("pravega-server: closing listener: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		if err := sys.Cluster().FlushAll(); err != nil {
			done <- err
			return
		}
		done <- sys.Cluster().WaitForTiering(drainTO)
	}()
	select {
	case err := <-done:
		if err != nil {
			log.Printf("pravega-server: drain incomplete: %v", err)
		} else {
			fmt.Println("pravega-server: drained, shutting down")
		}
	case <-time.After(drainTO):
		log.Printf("pravega-server: drain timed out after %v, shutting down", drainTO)
	}
}

// runCoord hosts the coordination store, the WAL bookie ensemble, and the
// controller. Segment data lives in store-role processes; the controller
// reaches them through a RemotePlane that resolves ownership per request.
func runCoord(listen string, stores, containers, bookies, policyMS int, metrics string, drainTO time.Duration) {
	meta := cluster.NewStore()
	total := stores * containers

	bkNodes := make(map[string]bookkeeper.Node, bookies)
	bookieIDs := make([]string, 0, bookies)
	for i := 0; i < bookies; i++ {
		id := fmt.Sprintf("bookie-%d", i)
		bkNodes[id] = bookkeeper.NewBookie(bookkeeper.BookieConfig{ID: id})
		bookieIDs = append(bookieIDs, id)
	}
	repl := bookkeeper.DefaultReplication()
	if bookies < repl.Ensemble {
		repl = bookkeeper.ReplicationConfig{Ensemble: bookies, WriteQuorum: bookies, AckQuorum: (bookies + 1) / 2}
	}
	if err := wire.PublishClusterTopology(meta, wire.ClusterTopology{
		TotalContainers: total,
		Bookies:         bookieIDs,
		Replication:     repl,
	}); err != nil {
		log.Fatalf("pravega-server: publishing topology: %v", err)
	}

	plane := wire.NewRemotePlane(meta, total, wire.ClientConfig{})
	defer plane.Close()
	ctrl, err := controller.New(controller.Config{Data: plane, Cluster: meta})
	if err != nil {
		log.Fatalf("pravega-server: starting controller: %v", err)
	}
	defer ctrl.Close()
	if policyMS > 0 {
		ctrl.StartPolicyLoops(time.Duration(policyMS) * time.Millisecond)
	}

	srv, err := wire.NewServerWith(wire.ServerConfig{
		Ctrl:    ctrl,
		Coord:   meta,
		Bookies: bkNodes,
		Info: func() (wire.ClusterInfo, error) {
			return wire.CoordClusterInfo(meta, total)
		},
	}, listen)
	if err != nil {
		log.Fatalf("pravega-server: listening: %v", err)
	}
	defer srv.Close()
	if obsSrv := serveMetrics(metrics); obsSrv != nil {
		defer obsSrv.Close()
	}
	fmt.Printf("pravega-server: coord serving on %s (%d containers, %d bookies, expecting %d stores)\n",
		srv.Addr(), total, bookies, stores)

	awaitSignal()
	fmt.Println("pravega-server: coord shutting down")
}

// runStore hosts one segment store claiming containers through the remote
// coordination store. Its WAL entries journal to the coord process's
// bookies, so a SIGKILL here loses nothing acknowledged.
func runStore(listen, advertise, storeID, coordAddr, ltsDir string, leaseTTL, rebalance time.Duration, metrics string, drainTO time.Duration) {
	if storeID == "" {
		log.Fatal("pravega-server: -role store requires -store-id")
	}
	if coordAddr == "" {
		log.Fatal("pravega-server: -role store requires -coord-addr")
	}
	if ltsDir == "" {
		log.Fatal("pravega-server: -role store requires -lts-dir (shared across stores for failover)")
	}

	rs, err := wire.DialCoordRetry(coordAddr, wire.ClientConfig{}, 30*time.Second)
	if err != nil {
		log.Fatalf("pravega-server: dialing coord: %v", err)
	}
	defer rs.Close()
	topo, err := wire.FetchClusterTopology(rs, 10*time.Second)
	if err != nil {
		log.Fatalf("pravega-server: fetching topology: %v", err)
	}

	bk, err := bookkeeper.NewClient(bookkeeper.ClientConfig{Meta: rs})
	if err != nil {
		log.Fatalf("pravega-server: bookkeeper client: %v", err)
	}
	for _, id := range topo.Bookies {
		bk.RegisterBookie(wire.NewRemoteBookie(id, rs))
	}
	fsStore, err := lts.NewFS(ltsDir)
	if err != nil {
		log.Fatalf("pravega-server: opening LTS directory: %v", err)
	}

	st, err := segstore.NewStore(segstore.StoreConfig{
		ID:              storeID,
		TotalContainers: topo.TotalContainers,
		Container: segstore.ContainerConfig{
			BK:          bk,
			Meta:        rs,
			Replication: topo.Replication,
			LTS:         fsStore,
		},
		Cluster:  rs,
		LeaseTTL: leaseTTL,
	})
	if err != nil {
		log.Fatalf("pravega-server: starting store: %v", err)
	}

	srv, err := wire.NewServerWith(wire.ServerConfig{
		Data: wire.StoreBackend{St: st},
		Load: st.LoadReport,
	}, listen)
	if err != nil {
		log.Fatalf("pravega-server: listening: %v", err)
	}
	defer srv.Close()
	if advertise == "" {
		advertise = srv.Addr()
	}

	mgr, err := segstore.StartOwnershipManager(st, segstore.OwnershipConfig{
		RebalanceInterval: rebalance,
		AdvertiseAddr:     advertise,
	})
	if err != nil {
		log.Fatalf("pravega-server: registering store: %v", err)
	}
	mgr.Run()
	if obsSrv := serveMetrics(metrics); obsSrv != nil {
		defer obsSrv.Close()
	}
	fmt.Printf("pravega-server: store %s serving on %s (advertised %s)\n", storeID, srv.Addr(), advertise)

	// Exit when the store dies on its own (lease lost past TTL → the
	// ownership manager crashes it) so a supervisor can restart the process.
	died := make(chan struct{})
	go func() {
		t := time.NewTicker(200 * time.Millisecond)
		defer t.Stop()
		for range t.C {
			if st.Closed() {
				close(died)
				return
			}
		}
	}()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
	case <-died:
		log.Fatalf("pravega-server: store %s lost its session (lease expired); exiting for restart", storeID)
	}
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "pravega-server: second signal, exiting immediately")
		os.Exit(1)
	}()

	// Graceful shutdown: stop accepting traffic, then drain — every hosted
	// container flushes, releases its claim, and bumps the placement epoch,
	// so survivors take over WITHOUT waiting out the lease TTL.
	fmt.Printf("pravega-server: store %s draining (up to %v)\n", storeID, drainTO)
	if err := srv.Close(); err != nil {
		log.Printf("pravega-server: closing listener: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- st.Drain() }()
	select {
	case err := <-done:
		if err != nil {
			log.Printf("pravega-server: drain incomplete: %v", err)
		} else {
			fmt.Printf("pravega-server: store %s drained, shutting down\n", storeID)
		}
	case <-time.After(drainTO):
		log.Printf("pravega-server: drain timed out after %v, shutting down", drainTO)
	}
}
