// Command pravega-bench regenerates the figures of the paper's evaluation
// (§5.2–§5.8) against this repository's Pravega implementation and its
// Kafka-like and Pulsar-like baselines, all running over the same scaled
// device profile.
//
// Usage:
//
//	pravega-bench -fig 5        # one figure (5..13)
//	pravega-bench -all          # every figure
//	pravega-bench -all -quick   # trimmed sweeps (a few minutes)
//	pravega-bench -scale 32     # scale the device profile further down
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/pravega-go/pravega/internal/figures"
)

func main() {
	var (
		fig      = flag.Int("fig", -1, "figure number to run (5..13; 0 = ablations)")
		all      = flag.Bool("all", false, "run every figure")
		quick    = flag.Bool("quick", false, "trimmed sweeps")
		scale    = flag.Float64("scale", 16, "device/rate scale divisor")
		duration = flag.Duration("point", 2*time.Second, "measured interval per sweep point")
	)
	flag.Parse()

	opts := figures.Options{
		Scale:         *scale,
		Quick:         *quick,
		PointDuration: *duration,
		Out:           os.Stdout,
	}

	runners := map[int]func(figures.Options) error{
		0:  func(o figures.Options) error { _, err := figures.Ablations(o); return err },
		5:  func(o figures.Options) error { _, err := figures.Fig5(o); return err },
		6:  func(o figures.Options) error { _, err := figures.Fig6(o); return err },
		7:  func(o figures.Options) error { _, err := figures.Fig7(o); return err },
		8:  func(o figures.Options) error { _, err := figures.Fig8(o); return err },
		9:  func(o figures.Options) error { _, err := figures.Fig9(o); return err },
		10: func(o figures.Options) error { _, err := figures.Fig10(o); return err },
		11: func(o figures.Options) error { _, err := figures.Fig11(o); return err },
		12: func(o figures.Options) error { _, err := figures.Fig12(o); return err },
		13: func(o figures.Options) error { _, err := figures.Fig13(o); return err },
	}

	run := func(n int) {
		start := time.Now()
		fmt.Printf("--- running Fig%d ---\n", n)
		if err := runners[n](opts); err != nil {
			fmt.Fprintf(os.Stderr, "Fig%d failed: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Printf("--- Fig%d done in %s ---\n", n, time.Since(start).Round(time.Second))
	}

	switch {
	case *all:
		for n := 5; n <= 13; n++ {
			run(n)
		}
		run(0) // ablations
	case *fig == 0, *fig >= 5 && *fig <= 13:
		run(*fig)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
