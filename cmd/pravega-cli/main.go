// Command pravega-cli administers a pravega-server node over the wire
// protocol and provides simple write/read utilities. It is built on the
// same remote client the library API uses (pravega.Connect / wire.Client),
// so it exercises the production transport end to end.
//
// Usage:
//
//	pravega-cli -addr localhost:9090 create-scope demo
//	pravega-cli -addr localhost:9090 create-stream demo events 4
//	pravega-cli -addr localhost:9090 segments demo events
//	pravega-cli -addr localhost:9090 scale demo events <segment> <factor>
//	pravega-cli -addr localhost:9090 write demo events key1 "hello world"
//	pravega-cli -addr localhost:9090 tail demo events
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"github.com/pravega-go/pravega/internal/controller"
	"github.com/pravega-go/pravega/internal/wire"
	"github.com/pravega-go/pravega/pkg/pravega"
)

func main() {
	addr := flag.String("addr", "localhost:9090", "pravega-server address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	sys, err := pravega.Connect(*addr, pravega.ClientConfig{})
	if err != nil {
		log.Fatalf("pravega-cli: connecting: %v", err)
	}
	defer sys.Close()

	switch args[0] {
	case "create-scope":
		need(args, 2)
		check(sys.CreateScope(args[1]))
		fmt.Println("scope created")
	case "create-stream":
		need(args, 4)
		segs, err := strconv.Atoi(args[3])
		if err != nil {
			log.Fatalf("pravega-cli: bad segment count %q", args[3])
		}
		check(sys.CreateStream(pravega.StreamConfig{Scope: args[1], Name: args[2], InitialSegments: segs}))
		fmt.Println("stream created")
	case "segments":
		need(args, 3)
		for _, s := range activeSegments(*addr, args[1], args[2]) {
			fmt.Printf("segment %d  range %v  (%s)\n", s.ID.Number, s.KeyRange, s.ID.QualifiedName())
		}
	case "scale":
		need(args, 5)
		seg, _ := strconv.ParseInt(args[3], 10, 64)
		factor, _ := strconv.Atoi(args[4])
		check(sys.ScaleStream(args[1], args[2], seg, factor))
		fmt.Println("scaled")
	case "seal-stream":
		need(args, 3)
		check(sys.SealStream(args[1], args[2]))
		fmt.Println("sealed")
	case "write":
		need(args, 5)
		w, err := sys.NewWriter(pravega.WriterConfig{Scope: args[1], Stream: args[2]})
		check(err)
		check(w.WriteEvent(args[3], []byte(args[4])).Wait())
		check(w.Close())
		fmt.Println("written")
	case "tail":
		need(args, 3)
		tail(*addr, args[1], args[2])
	default:
		usage()
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pravega-cli [-addr host:port] <command>
commands:
  create-scope <scope>
  create-stream <scope> <stream> <segments>
  segments <scope> <stream>
  scale <scope> <stream> <segment> <factor>
  seal-stream <scope> <stream>
  write <scope> <stream> <key> <event>
  tail <scope> <stream>`)
	os.Exit(2)
}

func check(err error) {
	if err != nil {
		log.Fatalf("pravega-cli: %v", err)
	}
}

// wireClient opens the raw remote client for operations below the public
// API surface (segment listing and raw tail reads).
func wireClient(addr string) *wire.Client {
	wc, err := wire.NewClient(addr, wire.ClientConfig{})
	check(err)
	return wc
}

func activeSegments(addr, scope, stream string) []controller.SegmentWithRange {
	wc := wireClient(addr)
	defer wc.Close()
	segs, err := wc.GetActiveSegments(scope, stream)
	check(err)
	return segs
}

// tail follows every active segment from its current end and prints events.
func tail(addr, scope, stream string) {
	wc := wireClient(addr)
	defer wc.Close()
	segs, err := wc.GetActiveSegments(scope, stream)
	check(err)
	offsets := make(map[string]int64)
	for _, s := range segs {
		info, err := wc.GetInfo(s.ID.QualifiedName())
		check(err)
		offsets[s.ID.QualifiedName()] = info.Length
	}
	fmt.Println("tailing (ctrl-c to stop)...")
	for {
		for qn, off := range offsets {
			res, err := wc.Read(qn, off, 1<<16, 250*time.Millisecond)
			check(err)
			buf := res.Data
			for len(buf) >= 4 {
				n := binary.BigEndian.Uint32(buf)
				if len(buf) < int(4+n) {
					break
				}
				fmt.Printf("[%s@%d] %s\n", qn, off, buf[4:4+n])
				off += int64(4 + n)
				buf = buf[4+n:]
			}
			offsets[qn] = off
		}
	}
}
