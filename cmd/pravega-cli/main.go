// Command pravega-cli administers a pravega-server node over the wire
// protocol and provides simple write/read utilities.
//
// Usage:
//
//	pravega-cli -addr localhost:9090 create-scope demo
//	pravega-cli -addr localhost:9090 create-stream demo events 4
//	pravega-cli -addr localhost:9090 segments demo events
//	pravega-cli -addr localhost:9090 scale demo events <segment> <factor>
//	pravega-cli -addr localhost:9090 write demo events key1 "hello world"
//	pravega-cli -addr localhost:9090 tail demo events
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"github.com/pravega-go/pravega/internal/controller"
	"github.com/pravega-go/pravega/internal/keyspace"
	"github.com/pravega-go/pravega/internal/wire"
)

func main() {
	addr := flag.String("addr", "localhost:9090", "pravega-server address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	conn, err := wire.Dial(*addr)
	if err != nil {
		log.Fatalf("pravega-cli: connecting: %v", err)
	}
	defer conn.Close()

	switch args[0] {
	case "create-scope":
		need(args, 2)
		must(conn.Call(wire.MsgCreateScope, wire.StreamReq{Scope: args[1]}))
		fmt.Println("scope created")
	case "create-stream":
		need(args, 4)
		segs, err := strconv.Atoi(args[3])
		if err != nil {
			log.Fatalf("pravega-cli: bad segment count %q", args[3])
		}
		must(conn.Call(wire.MsgCreateStream, wire.StreamReq{Scope: args[1], Stream: args[2], Segments: segs}))
		fmt.Println("stream created")
	case "segments":
		need(args, 3)
		rep := must(conn.Call(wire.MsgActiveSegments, wire.StreamReq{Scope: args[1], Stream: args[2]}))
		var segs []controller.SegmentWithRange
		if err := json.Unmarshal(rep.JSON, &segs); err != nil {
			log.Fatalf("pravega-cli: decoding: %v", err)
		}
		for _, s := range segs {
			fmt.Printf("segment %d  range %v  (%s)\n", s.ID.Number, s.KeyRange, s.ID.QualifiedName())
		}
	case "scale":
		need(args, 5)
		seg, _ := strconv.ParseInt(args[3], 10, 64)
		factor, _ := strconv.Atoi(args[4])
		must(conn.Call(wire.MsgScale, wire.StreamReq{Scope: args[1], Stream: args[2], SealSegment: seg, Factor: factor}))
		fmt.Println("scaled")
	case "seal-stream":
		need(args, 3)
		must(conn.Call(wire.MsgSealStream, wire.StreamReq{Scope: args[1], Stream: args[2]}))
		fmt.Println("sealed")
	case "write":
		need(args, 5)
		writeEvent(conn, args[1], args[2], args[3], []byte(args[4]))
	case "tail":
		need(args, 3)
		tail(conn, args[1], args[2])
	default:
		usage()
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pravega-cli [-addr host:port] <command>
commands:
  create-scope <scope>
  create-stream <scope> <stream> <segments>
  segments <scope> <stream>
  scale <scope> <stream> <segment> <factor>
  seal-stream <scope> <stream>
  write <scope> <stream> <key> <event>
  tail <scope> <stream>`)
	os.Exit(2)
}

func must(rep wire.Reply, err error) wire.Reply {
	if err != nil {
		log.Fatalf("pravega-cli: %v", err)
	}
	return rep
}

// writeEvent routes the event by key exactly as the client library does and
// appends one length-prefixed frame.
func writeEvent(conn *wire.Conn, scope, stream, key string, data []byte) {
	seg := segmentFor(conn, scope, stream, key)
	var frame []byte
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	frame = append(frame, hdr[:]...)
	frame = append(frame, data...)
	rep := must(conn.Call(wire.MsgAppend, wire.AppendReq{
		Segment:    seg,
		Data:       frame,
		WriterID:   fmt.Sprintf("cli-%d", os.Getpid()),
		EventNum:   time.Now().UnixNano(),
		EventCount: 1,
		CondOffset: -1,
	}))
	fmt.Printf("written to %s at offset %d\n", seg, rep.Offset)
}

func segmentFor(conn *wire.Conn, scope, stream, key string) string {
	rep := must(conn.Call(wire.MsgActiveSegments, wire.StreamReq{Scope: scope, Stream: stream}))
	var segs []controller.SegmentWithRange
	if err := json.Unmarshal(rep.JSON, &segs); err != nil {
		log.Fatalf("pravega-cli: decoding: %v", err)
	}
	h := keyspace.HashKey(key)
	for _, s := range segs {
		if s.KeyRange.Contains(h) {
			return s.ID.QualifiedName()
		}
	}
	log.Fatalf("pravega-cli: no active segment covers key %q", key)
	return ""
}

// tail follows every active segment from its current end and prints events.
func tail(conn *wire.Conn, scope, stream string) {
	rep := must(conn.Call(wire.MsgActiveSegments, wire.StreamReq{Scope: scope, Stream: stream}))
	var segs []controller.SegmentWithRange
	if err := json.Unmarshal(rep.JSON, &segs); err != nil {
		log.Fatalf("pravega-cli: decoding: %v", err)
	}
	offsets := make(map[string]int64)
	for _, s := range segs {
		info := must(conn.Call(wire.MsgGetInfo, wire.SegmentReq{Segment: s.ID.QualifiedName()}))
		var si struct{ Length int64 }
		_ = json.Unmarshal(info.JSON, &si)
		offsets[s.ID.QualifiedName()] = si.Length
	}
	fmt.Println("tailing (ctrl-c to stop)...")
	for {
		for qn, off := range offsets {
			rep, err := conn.Call(wire.MsgRead, wire.ReadReq{Segment: qn, Offset: off, MaxBytes: 1 << 16, WaitMS: 250})
			if err != nil {
				log.Fatalf("pravega-cli: read: %v", err)
			}
			buf := rep.Data
			for len(buf) >= 4 {
				n := binary.BigEndian.Uint32(buf)
				if len(buf) < int(4+n) {
					break
				}
				fmt.Printf("[%s@%d] %s\n", qn, off, buf[4:4+n])
				off += int64(4 + n)
				buf = buf[4+n:]
			}
			offsets[qn] = off
		}
	}
}
