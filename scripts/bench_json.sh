#!/usr/bin/env bash
# Runs the failover recovery-latency benchmark and emits BENCH_failover.json
# for CI artifact tracking. The benchmark crashes a live store and times
# crash→reconverged (every orphaned container fenced, replayed and
# re-acquired by a survivor); the custom µs/failover metric is the mean
# recovery latency per iteration.
#
# Usage: scripts/bench_json.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_failover.json}"
iters="${BENCH_ITERS:-5x}"

raw="$(go test ./internal/hosting -run 'xxx' -bench 'BenchmarkFailover' \
  -benchtime "$iters" -timeout 10m)"
echo "$raw"

line="$(echo "$raw" | grep -E '^BenchmarkFailover' | head -1)"
if [[ -z "$line" ]]; then
  echo "bench_json.sh: no BenchmarkFailover result in output" >&2
  exit 1
fi

# Shape: BenchmarkFailover  <N>  <ns> ns/op  <µs> µs/failover
n="$(echo "$line" | awk '{print $2}')"
ns_per_op="$(echo "$line" | awk '{for (i=1;i<NF;i++) if ($(i+1)=="ns/op") print $i}')"
us_per_failover="$(echo "$line" | awk '{for (i=1;i<NF;i++) if ($(i+1)=="µs/failover") print $i}')"
if [[ -z "$n" || -z "$ns_per_op" || -z "$us_per_failover" ]]; then
  echo "bench_json.sh: could not parse: $line" >&2
  exit 1
fi

commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
cat >"$out" <<EOF
{
  "bench": "BenchmarkFailover",
  "commit": "$commit",
  "iterations": $n,
  "ns_per_op": $ns_per_op,
  "us_per_failover": $us_per_failover
}
EOF
echo "bench_json.sh: wrote $out"
