#!/usr/bin/env bash
# Runs the failover recovery-latency benchmark sweep and emits
# BENCH_failover.json for CI artifact tracking. Each sweep point crashes a
# live store and times crash→reconverged (every orphaned container fenced,
# replayed and re-acquired by a survivor) at a given stores × containers ×
# seeded-WAL-depth shape; the custom µs/failover metric is the mean recovery
# latency per iteration. The first sweep point (the historical 3×4×16
# baseline) is kept as the top-level headline number so trend tracking
# across commits stays comparable.
#
# Usage: scripts/bench_json.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_failover.json}"
iters="${BENCH_ITERS:-5x}"

raw="$(go test ./internal/hosting -run 'xxx' -bench 'BenchmarkFailover' \
  -benchtime "$iters" -timeout 20m)"
echo "$raw"

lines="$(echo "$raw" | grep -E '^BenchmarkFailover')"
if [[ -z "$lines" ]]; then
  echo "bench_json.sh: no BenchmarkFailover result in output" >&2
  exit 1
fi

# Shape: BenchmarkFailover/stores=S/containers=C/wal=W-P  <N>  <ns> ns/op  <µs> µs/failover
sweep=""
baseline_n="" baseline_ns="" baseline_us=""
while IFS= read -r line; do
  name="$(echo "$line" | awk '{print $1}')"
  n="$(echo "$line" | awk '{print $2}')"
  ns_per_op="$(echo "$line" | awk '{for (i=1;i<NF;i++) if ($(i+1)=="ns/op") print $i}')"
  us_per_failover="$(echo "$line" | awk '{for (i=1;i<NF;i++) if ($(i+1)=="µs/failover") print $i}')"
  if [[ -z "$n" || -z "$ns_per_op" || -z "$us_per_failover" ]]; then
    echo "bench_json.sh: could not parse: $line" >&2
    exit 1
  fi
  stores="$(echo "$name" | sed -n 's|.*/stores=\([0-9]*\).*|\1|p')"
  containers="$(echo "$name" | sed -n 's|.*/containers=\([0-9]*\).*|\1|p')"
  wal="$(echo "$name" | sed -n 's|.*/wal=\([0-9]*\).*|\1|p')"
  if [[ -z "$baseline_n" ]]; then
    baseline_n="$n" baseline_ns="$ns_per_op" baseline_us="$us_per_failover"
  fi
  [[ -n "$sweep" ]] && sweep+=$',\n'
  sweep+="    {\"stores\": ${stores:-0}, \"containers_per_store\": ${containers:-0}, \"wal_depth\": ${wal:-0}, \"iterations\": $n, \"ns_per_op\": $ns_per_op, \"us_per_failover\": $us_per_failover}"
done <<<"$lines"

commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
cat >"$out" <<EOF
{
  "bench": "BenchmarkFailover",
  "commit": "$commit",
  "iterations": $baseline_n,
  "ns_per_op": $baseline_ns,
  "us_per_failover": $baseline_us,
  "sweep": [
$sweep
  ]
}
EOF
echo "bench_json.sh: wrote $out"
