#!/usr/bin/env bash
# Guards the public API's error contract: pkg/pravega must surface sentinel
# errors from pkg/pravega/errors.go, not leak internal sentinels. Direct
# references to internal sentinels are allowed only in errors.go (the
# mapping table), in tests, and in the flow-control sites listed below where
# the client reacts to an internal condition rather than reporting it.
set -euo pipefail
cd "$(dirname "$0")/.."

allowlist=(
  "reader.go:.*segstore.ErrSegmentTruncated"   # retention jump, handled internally
  "readergroup.go:.*segstore.ErrSegmentExists" # idempotent create-or-join
  "writer.go:.*segstore.ErrSegmentSealed"      # scale re-route, handled internally
)

fail=0
while IFS= read -r line; do
  ok=0
  for allowed in "${allowlist[@]}"; do
    if [[ "$line" =~ $allowed ]]; then
      ok=1
      break
    fi
  done
  if [[ $ok -eq 0 ]]; then
    echo "lint_api_errors: new direct internal sentinel dependency: $line" >&2
    fail=1
  fi
done < <(grep -n 'segstore\.Err\|controller\.Err\|wal\.Err' pkg/pravega/*.go \
  | grep -v '^pkg/pravega/errors\.go:' \
  | grep -v '_test\.go:' || true)

if [[ $fail -ne 0 ]]; then
  echo "lint_api_errors: map the sentinel in pkg/pravega/errors.go (convertErr) instead" >&2
  exit 1
fi
echo "lint_api_errors: OK"
