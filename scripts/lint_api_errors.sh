#!/usr/bin/env bash
# Guards the public API's error contract: pkg/pravega must surface sentinel
# errors from pkg/pravega/errors.go, not leak internal sentinels. Direct
# references to internal sentinels are allowed only in errors.go (the
# mapping table), in tests, and in the flow-control sites listed below where
# the client reacts to an internal condition rather than reporting it.
set -euo pipefail
cd "$(dirname "$0")/.."

allowlist=(
  "reader.go:.*segstore.ErrSegmentTruncated"   # retention jump, handled internally
  "readergroup.go:.*segstore.ErrSegmentExists" # idempotent create-or-join
  "writer.go:.*segstore.ErrSegmentSealed"      # scale re-route, handled internally
  "writer.go:.*segstore.ErrWrongContainer"     # failover park-and-replay, handled internally
  "writer.go:.*segstore.ErrContainerDown"      # failover park-and-replay, handled internally
  "writer.go:.*wal.ErrFenced"                  # zombie fenced by new owner, handled internally
)

fail=0
while IFS= read -r line; do
  ok=0
  for allowed in "${allowlist[@]}"; do
    if [[ "$line" =~ $allowed ]]; then
      ok=1
      break
    fi
  done
  if [[ $ok -eq 0 ]]; then
    echo "lint_api_errors: new direct internal sentinel dependency: $line" >&2
    fail=1
  fi
done < <(grep -n 'segstore\.Err\|controller\.Err\|wal\.Err' pkg/pravega/*.go \
  | grep -v '^pkg/pravega/errors\.go:' \
  | grep -v '_test\.go:' || true)

if [[ $fail -ne 0 ]]; then
  echo "lint_api_errors: map the sentinel in pkg/pravega/errors.go (convertErr) instead" >&2
  exit 1
fi

# Context convention (DESIGN.md §"Context convention"): every NEW public
# method in pkg/pravega must take a context.Context as its first parameter.
# The grandfathered list below holds the pre-convention surface — deprecated
# admin wrappers, non-blocking accessors, and legacy methods that already
# have a *Ctx twin. Do not add new entries; add a ctx parameter (or a *Ctx
# variant for a convenience form) instead.
ctx_allowlist=(
  # Non-blocking accessors / constructors / teardown.
  "System) Close" "System) MetricsAddr" "System) Cluster" "System) Controller"
  "System) Streams" "System) NewWriter" "System) NewTransactionalWriter"
  "System) NewReaderGroup" "System) NewKeyValueTable"
  "EventWriter) ID" "EventWriter) RTT" "EventWriter) BytesAcked" "EventWriter) Close"
  "EventWriter) WriteEvent" # async: returns a future with WaitCtx
  "TransactionalEventWriter) ID" "TransactionalEventWriter) Close"
  "Txn) ID" "Txn) WriteEvent" # async: returns a future with WaitCtx
  "WriteFuture) Done" "WriteFuture) Err"
  "ReaderGroup) Name" "ReaderGroup) Streams" "ReaderGroup) UnreadSegments"
  "ReaderGroup) NewReader"
  "Reader) Close"
  # Legacy blocking forms with a ctx twin (FlushCtx, WaitCtx,
  # ReadNextEventCtx, GetCtx, ...).
  "EventWriter) Flush" "WriteFuture) Wait" "Reader) ReadNextEvent"
  "KeyValueTable) Get" "KeyValueTable) Put" "KeyValueTable) Delete"
  "KeyValueTable) Txn" "KeyValueTable) Keys" "KeyValueTable) Len"
  # Deprecated System admin wrappers over Streams() (ctx-first).
  "System) CreateScope" "System) CreateStream" "System) UpdateStreamPolicies"
  "System) SealStream" "System) DeleteStream" "System) SegmentCount"
  "System) ScaleStream" "System) TruncateStreamAtTail"
)

ctx_fail=0
while IFS= read -r line; do
  ok=0
  for allowed in "${ctx_allowlist[@]}"; do
    if [[ "$line" == *"$allowed("* ]]; then
      ok=1
      break
    fi
  done
  if [[ $ok -eq 0 ]]; then
    echo "lint_api_errors: new public method without context.Context: $line" >&2
    ctx_fail=1
  fi
done < <(grep -n '^func ([a-zA-Z] \*[A-Z][A-Za-z]*) [A-Z]' pkg/pravega/*.go \
  | grep -v 'ctx context\.Context' \
  | grep -v '_test\.go:' || true)

if [[ $ctx_fail -ne 0 ]]; then
  echo "lint_api_errors: public methods take ctx first (DESIGN.md §Context convention); do not extend the grandfathered list" >&2
  exit 1
fi
echo "lint_api_errors: OK"
