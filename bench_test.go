// Package pravega_bench hosts one testing.B benchmark per evaluation
// figure of the paper (§5.2–§5.8). Each benchmark runs the corresponding
// figure in Quick mode (trimmed sweeps) and reports the headline metrics
// the paper plots as custom benchmark units, so `go test -bench=.` yields a
// compact reproduction summary. The full sweeps (all points, all variants)
// run via `go run ./cmd/pravega-bench -all`.
package pravega_bench

import (
	"io"
	"testing"
	"time"

	"github.com/pravega-go/pravega/internal/figures"
)

// benchOptions returns trimmed figure options sized for testing.B runs.
func benchOptions() figures.Options {
	return figures.Options{
		Scale:         16,
		Quick:         true,
		PointDuration: 1200 * time.Millisecond,
		WarmUp:        500 * time.Millisecond,
		Out:           io.Discard,
	}
}

// reportSeries publishes one metric per series, labelled for readability.
func reportSeries(b *testing.B, fig *figures.Figure, metric func(p figures.Point) (float64, string)) {
	b.Helper()
	for _, p := range fig.Points {
		v, unit := metric(p)
		b.ReportMetric(v, sanitize(p.Series)+"_"+unit)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ' || r == '(' || r == ')' || r == ',':
			// collapse
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkFig05Durability regenerates Fig. 5 (§5.2): write latency and
// throughput for Pravega flush/no-flush vs Kafka flush/no-flush.
func BenchmarkFig05Durability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := figures.Fig5(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, fig, func(p figures.Point) (float64, string) {
			return p.Result.WriteLatency.P95 / 1e3, "wp95ms"
		})
	}
}

// BenchmarkFig06Batching regenerates Fig. 6 (§5.3): client batching
// strategies.
func BenchmarkFig06Batching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := figures.Fig6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, fig, func(p figures.Point) (float64, string) {
			return p.Result.WriteLatency.P95 / 1e3, "wp95ms"
		})
	}
}

// BenchmarkFig07LargeEvents regenerates Fig. 7 (§5.4): 10 KB events and
// the LTS bottleneck / NoOp-LTS comparison.
func BenchmarkFig07LargeEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := figures.Fig7(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, fig, func(p figures.Point) (float64, string) {
			return p.Result.MBPerSec, "MBps"
		})
	}
}

// BenchmarkFig08TailReads regenerates Fig. 8 (§5.5): end-to-end latency of
// tail reads.
func BenchmarkFig08TailReads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := figures.Fig8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, fig, func(p figures.Point) (float64, string) {
			return p.Result.E2ELatency.P95 / 1e3, "e2ep95ms"
		})
	}
}

// BenchmarkFig09RoutingKeys regenerates Fig. 9 (§5.5): routing-key impact
// on read performance.
func BenchmarkFig09RoutingKeys(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := figures.Fig9(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, fig, func(p figures.Point) (float64, string) {
			return p.Result.E2ELatency.P95 / 1e3, "e2ep95ms"
		})
	}
}

// BenchmarkFig10Parallelism regenerates Fig. 10 (§5.6): sustained 250 MB/s
// across segment and writer counts.
func BenchmarkFig10Parallelism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := figures.Fig10(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, fig, func(p figures.Point) (float64, string) {
			return p.Result.MBPerSec, "MBps"
		})
	}
}

// BenchmarkFig11MaxThroughput regenerates Fig. 11 (§5.6): closed-loop
// maximum throughput at 10 vs 500 segments.
func BenchmarkFig11MaxThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := figures.Fig11(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, fig, func(p figures.Point) (float64, string) {
			return p.Result.MBPerSec, "MBps"
		})
	}
}

// BenchmarkFig12HistoricalReads regenerates Fig. 12 (§5.7): catch-up reads
// from long-term storage.
func BenchmarkFig12HistoricalReads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := figures.Fig12(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, fig, func(p figures.Point) (float64, string) {
			return p.Result.ReadMBPerSec, "readMBps"
		})
	}
}

// BenchmarkAblations runs the design-choice ablation harness: the paper's
// headline mechanisms (adaptive frame delay, pipelined client batching,
// integrated tiering backpressure) each removed in isolation.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := figures.Ablations(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, fig, func(p figures.Point) (float64, string) {
			return p.Result.WriteLatency.P95 / 1e3, "wp95ms"
		})
	}
}

// BenchmarkFig13AutoScaling regenerates Fig. 13 (§5.8): the auto-scaling
// time series. The reported metric is the final segment count (the paper's
// stream grows from 1 to several segments) and the last-sample p50 write
// latency.
func BenchmarkFig13AutoScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := figures.Fig13(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(series.Samples) == 0 {
			b.Fatal("no samples")
		}
		last := series.Samples[len(series.Samples)-1]
		b.ReportMetric(float64(last.Segments), "final_segments")
		b.ReportMetric(last.P50ms, "final_p50ms")
		first := series.Samples[0]
		b.ReportMetric(first.P50ms, "initial_p50ms")
	}
}
